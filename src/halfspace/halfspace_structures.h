// Prioritized and max structures for 2D halfplane reporting (Theorem 3,
// d = 2; Section 5.4 of the paper).
//
// Both are a balanced binary tree over the points sorted by descending
// weight (the paper's "balanced binary search tree on weights"):
//
//   * HalfspacePrioritized — each node stores ConvexLayers of its
//     weight-contiguous point set. A query (h, tau) decomposes the
//     prefix {w >= tau} into O(log n) canonical nodes and runs halfplane
//     reporting on each: O(log^2 n + t log n) time, O(n log n) space
//     (the paper's bound with fractional cascading removed — documented
//     substitution).
//   * HalfspaceMax — each node stores just the ConvexHull of its set.
//     The heaviest point inside h is found by descending from the root,
//     always taking the heavier child whose hull intersects h —
//     O(log n) emptiness tests of O(log n) each. This replaces the
//     paper's planar-point-location-over-incremental-hulls structure
//     [31] with the same contract at an extra log.

#ifndef TOPK_HALFSPACE_HALFSPACE_STRUCTURES_H_
#define TOPK_HALFSPACE_HALFSPACE_STRUCTURES_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"
#include "halfspace/convex.h"
#include "halfspace/convex_layers.h"
#include "halfspace/point2.h"

namespace topk::halfspace {

// Balanced tree over the weight-descending order with an Inner structure
// per node. Inner must be constructible from std::vector<Point2W>.
template <typename Inner>
class WeightTree {
 public:
  WeightTree() = default;
  explicit WeightTree(std::vector<Point2W> data) : sorted_(std::move(data)) {
    std::sort(sorted_.begin(), sorted_.end(), ByWeightDesc());
    if (!sorted_.empty()) root_ = Build(0, sorted_.size());
  }

  size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  // First index whose weight drops below tau = size of the prefix
  // {w >= tau}.
  size_t PrefixEnd(double tau) const {
    return static_cast<size_t>(
        std::lower_bound(sorted_.begin(), sorted_.end(), tau,
                         [](const Point2W& p, double t) {
                           return p.weight >= t;
                         }) -
        sorted_.begin());
  }

  // Visits the O(log n) canonical nodes covering [0, prefix_end);
  // visit(inner) returns false to stop. Returns false iff stopped.
  template <typename Visit>
  bool VisitPrefix(size_t prefix_end, Visit&& visit,
                   QueryStats* stats) const {
    return VisitPrefixAt(root_, prefix_end, visit, stats);
  }

  // Root inner structure (covers all points); nullptr when empty.
  const Inner* root_inner() const {
    return root_ < 0 ? nullptr : &nodes_[root_].inner;
  }

  // Descends from the root picking the heavier child accepted by
  // `accepts(inner)`; returns the heaviest single point whose every
  // ancestor was accepted. Requires accepts(root) == true.
  template <typename Accepts>
  const Point2W& DescendHeaviest(Accepts&& accepts,
                                 QueryStats* stats) const {
    int32_t idx = root_;
    while (true) {
      const Node& node = nodes_[idx];
      AddNodes(stats, 1);
      if (node.left < 0) return sorted_[node.begin];  // leaf
      if (accepts(nodes_[node.left].inner)) {
        idx = node.left;
      } else {
        idx = node.right;
      }
    }
  }

 private:
  struct Node {
    size_t begin, end;  // range in sorted_
    Inner inner;
    int32_t left = -1, right = -1;

    Node(size_t b, size_t e, Inner in)
        : begin(b), end(e), inner(std::move(in)) {}
  };

  int32_t Build(size_t begin, size_t end) {
    const int32_t idx = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back(
        begin, end,
        Inner(std::vector<Point2W>(sorted_.begin() + begin,
                                   sorted_.begin() + end)));
    if (end - begin > 1) {
      const size_t mid = begin + (end - begin) / 2;
      const int32_t l = Build(begin, mid);
      const int32_t r = Build(mid, end);
      nodes_[idx].left = l;
      nodes_[idx].right = r;
    }
    return idx;
  }

  template <typename Visit>
  bool VisitPrefixAt(int32_t idx, size_t prefix_end, Visit& visit,
                     QueryStats* stats) const {
    if (idx < 0) return true;
    const Node& node = nodes_[idx];
    if (prefix_end <= node.begin) return true;
    AddNodes(stats, 1);
    if (prefix_end >= node.end) return visit(node.inner);
    return VisitPrefixAt(node.left, prefix_end, visit, stats) &&
           VisitPrefixAt(node.right, prefix_end, visit, stats);
  }

  std::vector<Point2W> sorted_;  // weight-descending
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

class HalfspacePrioritized {
 public:
  using Element = Point2W;
  using Predicate = Halfplane;

  explicit HalfspacePrioritized(std::vector<Point2W> data)
      : tree_(std::move(data)) {}

  size_t size() const { return tree_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    const double lg_n = std::log2(static_cast<double>(n));
    return std::max(1.0, lg_n * lg_n / lg_b);
  }

  template <typename Emit>
  void QueryPrioritized(const Halfplane& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    // Canonical nodes cover exactly {w >= tau}; no per-point weight
    // filtering is needed inside.
    tree_.VisitPrefix(
        tree_.PrefixEnd(tau),
        [&](const ConvexLayers& layers) {
          return layers.Report(q, emit, stats);
        },
        stats);
  }

 private:
  WeightTree<ConvexLayers> tree_;
};

class HalfspaceMax {
 public:
  using Element = Point2W;
  using Predicate = Halfplane;

  explicit HalfspaceMax(std::vector<Point2W> data)
      : tree_(std::move(data)) {}

  size_t size() const { return tree_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    return HalfspacePrioritized::QueryCostBound(n, block_size);
  }

  std::optional<Point2W> QueryMax(const Halfplane& q,
                                  QueryStats* stats = nullptr) const {
    const ConvexHull* root = tree_.root_inner();
    if (root == nullptr || !root->IntersectsHalfplane(q)) {
      return std::nullopt;
    }
    return tree_.DescendHeaviest(
        [&q](const ConvexHull& hull) { return hull.IntersectsHalfplane(q); },
        stats);
  }

 private:
  WeightTree<ConvexHull> tree_;
};

}  // namespace topk::halfspace

#endif  // TOPK_HALFSPACE_HALFSPACE_STRUCTURES_H_
