// 3D halfspace reporting over the kd-tree substrate (Theorem 3's
// higher-dimensional bullets, instantiated at d = 3).
//
// For d >= 4 the paper's point is qualitative: once Q_pri is polynomial
// ((n/B)^eps), Theorem 1 costs O(Q_pri) — the reduction is free. Our
// laptop-scale stand-in is d = 3 over the weight-augmented kd-tree,
// whose halfspace queries genuinely exhibit the polynomial
// Theta(n^{2/3}) frontier on adversarial queries while staying
// output-sensitive on typical ones. The box tests below are the
// standard support-corner computations: a box meets {x : n.x >= c} iff
// its corner extremal in direction n does.

#ifndef TOPK_HALFSPACE_HALFSPACE3D_H_
#define TOPK_HALFSPACE_HALFSPACE3D_H_

#include <cstdint>

#include "dominance/kdtree.h"
#include "dominance/point3.h"

namespace topk::halfspace {

struct Halfspace3 {
  double nx = 0, ny = 0, nz = 0;  // inward normal
  double c = 0;                   // matches iff n . p >= c
};

struct Halfspace3Problem {
  using Element = dominance::Point3;
  using Predicate = Halfspace3;
  // O(n^3) distinct outcomes (a plane through <= 3 input points bounds
  // each one).
  static constexpr double kLambda = 3.0;

  static bool Matches(const Halfspace3& q, const dominance::Point3& e) {
    return q.nx * e.x + q.ny * e.y + q.nz * e.z >= q.c;
  }
};

struct Halfspace3Geo {
  static constexpr int kDims = 3;
  static double Coord(const dominance::Point3& e, int dim) {
    return dim == 0 ? e.x : (dim == 1 ? e.y : e.z);
  }
  static bool IntersectsBox(const Halfspace3& q, const double* lo,
                            const double* hi) {
    // Support corner: per axis take the end maximizing the dot product.
    const double best = q.nx * (q.nx >= 0 ? hi[0] : lo[0]) +
                        q.ny * (q.ny >= 0 ? hi[1] : lo[1]) +
                        q.nz * (q.nz >= 0 ? hi[2] : lo[2]);
    return best >= q.c;
  }
  static bool ContainsBox(const Halfspace3& q, const double* lo,
                          const double* hi) {
    const double worst = q.nx * (q.nx >= 0 ? lo[0] : hi[0]) +
                         q.ny * (q.ny >= 0 ? lo[1] : hi[1]) +
                         q.nz * (q.nz >= 0 ? lo[2] : hi[2]);
    return worst >= q.c;
  }
};

using Halfspace3KdTree =
    dominance::KdTree<Halfspace3Problem, Halfspace3Geo>;

}  // namespace topk::halfspace

#endif  // TOPK_HALFSPACE_HALFSPACE3D_H_
