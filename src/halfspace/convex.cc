#include "halfspace/convex.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace topk::halfspace {
namespace {

// Strictly-right-turn test for the monotone chain (collinear => pop).
double Cross(const Point2W& o, const Point2W& a, const Point2W& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

bool XYLess(const Point2W& a, const Point2W& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.y != b.y) return a.y < b.y;
  return a.id < b.id;
}

double Dot(const Point2W& p, double nx, double ny) {
  return nx * p.x + ny * p.y;
}

}  // namespace

std::vector<Point2W> HullOfSorted(const std::vector<Point2W>& pts,
                                  std::vector<char>* out_on_hull,
                                  size_t* out_upper_begin) {
  const size_t n = pts.size();
  std::vector<Point2W> ring;
  std::vector<size_t> idx;  // ring vertex -> pts index
  if (out_on_hull != nullptr) out_on_hull->assign(n, 0);
  if (n == 0) {
    if (out_upper_begin != nullptr) *out_upper_begin = 0;
    return ring;
  }
  std::vector<size_t> stack;
  // Lower chain.
  for (size_t i = 0; i < n; ++i) {
    while (stack.size() >= 2 &&
           Cross(pts[stack[stack.size() - 2]], pts[stack.back()], pts[i]) <=
               0) {
      stack.pop_back();
    }
    stack.push_back(i);
  }
  const size_t lower_size = stack.size();
  for (size_t i : stack) idx.push_back(i);
  // Upper chain (right to left), excluding both endpoints already taken.
  stack.clear();
  for (size_t ii = n; ii-- > 0;) {
    while (stack.size() >= 2 &&
           Cross(pts[stack[stack.size() - 2]], pts[stack.back()], pts[ii]) <=
               0) {
      stack.pop_back();
    }
    stack.push_back(ii);
  }
  for (size_t j = 1; j + 1 < stack.size(); ++j) idx.push_back(stack[j]);

  ring.reserve(idx.size());
  for (size_t i : idx) {
    ring.push_back(pts[i]);
    if (out_on_hull != nullptr) (*out_on_hull)[i] = 1;
  }
  if (out_upper_begin != nullptr) *out_upper_begin = lower_size;
  return ring;
}

ConvexHull::ConvexHull(std::vector<Point2W> pts) {
  std::sort(pts.begin(), pts.end(), XYLess);
  pts.erase(std::unique(pts.begin(), pts.end(),
                        [](const Point2W& a, const Point2W& b) {
                          return a.x == b.x && a.y == b.y;
                        }),
            pts.end());
  ring_ = HullOfSorted(pts, nullptr, &upper_begin_);
}

size_t ConvexHull::ChainExtreme(size_t begin, size_t end, double nx,
                                double ny) const {
  // Chain vertices ring_[begin .. end] (end inclusive, indices mod ring
  // size). g(i) = d . (v_{i+1} - v_i) has at most one sign change.
  const size_t m = ring_.size();
  auto vert = [&](size_t i) -> const Point2W& { return ring_[i % m]; };
  size_t len = (end + m - begin) % m;  // number of edges in the chain
  if (len == 0) return begin % m;
  auto g_positive = [&](size_t e) {  // edge from begin+e to begin+e+1
    const Point2W& a = vert(begin + e);
    const Point2W& b = vert(begin + e + 1);
    return Dot(b, nx, ny) > Dot(a, nx, ny);
  };
  size_t best;
  if (g_positive(0)) {
    // + ... + then - ... -: find the first non-positive edge.
    size_t lo = 0, hi = len;  // g_positive true on [0, ans)
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (g_positive(mid)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    best = (begin + lo) % m;
  } else {
    // - ... - then (possibly) + ... +: extreme at an endpoint.
    const size_t first = begin % m;
    const size_t last = end % m;
    best = Dot(vert(begin), nx, ny) >= Dot(vert(end), nx, ny) ? first : last;
  }
  // Bounded local fix-up for floating-point noise / width-pi corners.
  for (int step = 0; step < 4; ++step) {
    const size_t next = (best + 1) % m;
    const size_t prev = (best + m - 1) % m;
    if (Dot(ring_[next], nx, ny) > Dot(ring_[best], nx, ny)) {
      best = next;
    } else if (Dot(ring_[prev], nx, ny) > Dot(ring_[best], nx, ny)) {
      best = prev;
    } else {
      break;
    }
  }
  return best;
}

size_t ConvexHull::ExtremeIndex(double nx, double ny) const {
  TOPK_CHECK(!ring_.empty());
  const size_t m = ring_.size();
  if (m <= 32) {
    size_t best = 0;
    for (size_t i = 1; i < m; ++i) {
      if (Dot(ring_[i], nx, ny) > Dot(ring_[best], nx, ny)) best = i;
    }
    return best;
  }
  // Lower chain: vertices [0, upper_begin_ - 1]; upper chain wraps from
  // upper_begin_ - 1 around to vertex 0.
  const size_t a = ChainExtreme(0, upper_begin_ - 1, nx, ny);
  const size_t b = ChainExtreme(upper_begin_ - 1, m, nx, ny) % m;
  size_t best = Dot(ring_[a], nx, ny) >= Dot(ring_[b], nx, ny) ? a : b;
  // Final safety net: the two-chain argument leaves rare boundary cases
  // (exactly vertical edges); a short walk certifies a local max, and a
  // local max on a convex ring is global.
  for (int step = 0; step < 8; ++step) {
    const size_t next = (best + 1) % m;
    const size_t prev = (best + m - 1) % m;
    if (Dot(ring_[next], nx, ny) > Dot(ring_[best], nx, ny)) {
      best = next;
    } else if (Dot(ring_[prev], nx, ny) > Dot(ring_[best], nx, ny)) {
      best = prev;
    } else {
      return best;
    }
  }
  // Degenerate numerics: fall back to a scan.
  size_t scan_best = 0;
  for (size_t i = 1; i < m; ++i) {
    if (Dot(ring_[i], nx, ny) > Dot(ring_[scan_best], nx, ny)) scan_best = i;
  }
  return scan_best;
}

double ConvexHull::MaxDot(double nx, double ny) const {
  if (ring_.empty()) return -std::numeric_limits<double>::infinity();
  return Dot(ring_[ExtremeIndex(nx, ny)], nx, ny);
}

}  // namespace topk::halfspace
