// Range-tree structures for 2D orthogonal range reporting.
//
//   * RangeTreePrioritized — a balanced tree over the x-sorted points;
//     each node owns a priority search tree over (y, weight) for its
//     x-contiguous slice. A query decomposes [x1, x2] into O(log n)
//     canonical nodes and runs a three-sided PST query
//     (y in [y1, y2], w >= tau) on each: O(log^2 n + t) time,
//     O(n log n) space, no duplicates (canonical slices are disjoint).
//   * RangeTreeMax — same skeleton with a sparse-table range max per
//     node: O(log^2 n) max queries.
//
// Local-index convention: the per-node 1D structures store Point1D
// entries whose `id` is the index into the node's own element slice,
// kept in ascending *global id* order so that 1D weight tie-breaking
// agrees with the global (weight, id) order.

#ifndef TOPK_RANGE2D_RANGE_TREE_H_
#define TOPK_RANGE2D_RANGE_TREE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "range2d/point2d.h"

namespace topk::range2d {

// Shared skeleton: implicit balanced tree over the x-sorted points with
// an Inner 1D structure per node, plus canonical decomposition of
// [x1, x2]. Inner is built from a vector of Point1D (y as key).
template <typename Inner>
class XRangeTree {
 public:
  XRangeTree() = default;

  explicit XRangeTree(std::vector<WPoint2D> data)
      : points_(std::move(data)) {
    std::sort(points_.begin(), points_.end(),
              [](const WPoint2D& a, const WPoint2D& b) {
                if (a.x != b.x) return a.x < b.x;
                return a.id < b.id;
              });
    if (!points_.empty()) root_ = Build(0, points_.size());
  }

  size_t size() const { return points_.size(); }
  const WPoint2D& point(size_t node, size_t local) const {
    return points_[nodes_[node].begin + local_order_[node][local]];
  }

  // Visits the canonical nodes covering x in [x1, x2]:
  // visit(node_index, inner) returning false stops.
  template <typename Visit>
  void VisitCanonical(double x1, double x2, Visit&& visit,
                      QueryStats* stats) const {
    if (points_.empty() || x1 > x2) return;
    const size_t lo = LowerBound(x1);
    const size_t hi = UpperBound(x2);
    if (lo >= hi) return;
    VisitAt(root_, lo, hi, visit, stats);
  }

 private:
  struct Node {
    size_t begin, end;
    Inner inner;
    int32_t left = -1, right = -1;
    Node(size_t b, size_t e, Inner in)
        : begin(b), end(e), inner(std::move(in)) {}
  };

  int32_t Build(size_t begin, size_t end) {
    // Node slice ordered by global id so local 1D tie-breaks match the
    // global order (see header comment).
    std::vector<uint32_t> order(end - begin);
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) {
                return points_[begin + a].id < points_[begin + b].id;
              });
    std::vector<range1d::Point1D> slice(end - begin);
    for (size_t i = 0; i < slice.size(); ++i) {
      const WPoint2D& p = points_[begin + order[i]];
      slice[i] = {p.y, p.weight, i};
    }
    const int32_t idx = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back(begin, end, Inner(std::move(slice)));
    local_order_.push_back(std::move(order));
    if (end - begin > 1) {
      const size_t mid = begin + (end - begin) / 2;
      const int32_t l = Build(begin, mid);
      const int32_t r = Build(mid, end);
      nodes_[idx].left = l;
      nodes_[idx].right = r;
    }
    return idx;
  }

  size_t LowerBound(double v) const {
    return static_cast<size_t>(
        std::lower_bound(points_.begin(), points_.end(), v,
                         [](const WPoint2D& p, double x) { return p.x < x; }) -
        points_.begin());
  }

  size_t UpperBound(double v) const {
    return static_cast<size_t>(
        std::upper_bound(points_.begin(), points_.end(), v,
                         [](double x, const WPoint2D& p) { return x < p.x; }) -
        points_.begin());
  }

  template <typename Visit>
  bool VisitAt(int32_t idx, size_t lo, size_t hi, Visit& visit,
               QueryStats* stats) const {
    if (idx < 0) return true;
    const Node& node = nodes_[idx];
    if (hi <= node.begin || lo >= node.end) return true;
    AddNodes(stats, 1);
    if (lo <= node.begin && node.end <= hi) {
      return visit(static_cast<size_t>(idx), node.inner);
    }
    return VisitAt(node.left, lo, hi, visit, stats) &&
           VisitAt(node.right, lo, hi, visit, stats);
  }

  std::vector<WPoint2D> points_;  // x-sorted
  std::vector<Node> nodes_;
  std::vector<std::vector<uint32_t>> local_order_;  // node -> slice order
  int32_t root_ = -1;
};

class RangeTreePrioritized {
 public:
  using Element = WPoint2D;
  using Predicate = Rect2;

  explicit RangeTreePrioritized(std::vector<WPoint2D> data)
      : tree_(std::move(data)) {}

  size_t size() const { return tree_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    const double lg_n = std::log2(static_cast<double>(n));
    return std::max(1.0, lg_n * lg_n / lg_b);
  }

  template <typename Emit>
  void QueryPrioritized(const Rect2& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    bool keep_going = true;
    tree_.VisitCanonical(
        q.x1, q.x2,
        [&](size_t node, const range1d::PrioritySearchTree& pst) {
          pst.QueryPrioritized(
              {q.y1, q.y2}, tau,
              [&](const range1d::Point1D& p) {
                return keep_going = emit(tree_.point(node, p.id));
              },
              stats);
          return keep_going;
        },
        stats);
  }

 private:
  XRangeTree<range1d::PrioritySearchTree> tree_;
};

class RangeTreeMax {
 public:
  using Element = WPoint2D;
  using Predicate = Rect2;

  explicit RangeTreeMax(std::vector<WPoint2D> data)
      : tree_(std::move(data)) {}

  size_t size() const { return tree_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    return RangeTreePrioritized::QueryCostBound(n, block_size);
  }

  std::optional<WPoint2D> QueryMax(const Rect2& q,
                                   QueryStats* stats = nullptr) const {
    std::optional<WPoint2D> best;
    tree_.VisitCanonical(
        q.x1, q.x2,
        [&](size_t node, const range1d::RangeMax& rm) {
          std::optional<range1d::Point1D> hit =
              rm.QueryMax({q.y1, q.y2}, stats);
          if (hit.has_value()) {
            const WPoint2D& p = tree_.point(node, hit->id);
            if (!best.has_value() || HeavierThan(p, *best)) best = p;
          }
          return true;
        },
        stats);
    return best;
  }

 private:
  XRangeTree<range1d::RangeMax> tree_;
};

}  // namespace topk::range2d

#endif  // TOPK_RANGE2D_RANGE_TREE_H_
