// Problem definition: 2D orthogonal range reporting.
//
// D is a set of weighted points in R^2; a predicate is an axis-parallel
// rectangle. The paper's survey (Section 2) calls the top-k version of
// this "the most extensively studied (and hence, the best understood)
// problem" [28, 29]; this module instantiates both reductions on it.
//
// Polynomial boundedness: q(D) is determined by the ranks of the four
// rectangle sides among the point coordinates — at most (n+1)^4
// outcomes, lambda = 4.

#ifndef TOPK_RANGE2D_POINT2D_H_
#define TOPK_RANGE2D_POINT2D_H_

#include <cstdint>

namespace topk::range2d {

struct WPoint2D {
  double x = 0, y = 0;
  double weight = 0;
  uint64_t id = 0;
};

struct Rect2 {
  double x1 = 0, x2 = 0;
  double y1 = 0, y2 = 0;
};

struct Range2DProblem {
  using Element = WPoint2D;
  using Predicate = Rect2;
  static constexpr double kLambda = 4.0;

  static bool Matches(const Rect2& q, const WPoint2D& e) {
    return q.x1 <= e.x && e.x <= q.x2 && q.y1 <= e.y && e.y <= q.y2;
  }
};

}  // namespace topk::range2d

#endif  // TOPK_RANGE2D_POINT2D_H_
