// Weight-augmented kd-tree: a generic prioritized + max structure for
// decomposable point predicates (dominance boxes, disks, halfplanes).
//
// Median-split kd-tree storing one element per node, each node caching
// its subtree's bounding box and max weight. Queries prune subtrees
// whose box misses the predicate or whose max weight misses the
// threshold; fully-contained subtrees are traversed emitting only
// qualifying weights.
//
// Substitution note (see DESIGN.md): the paper's dominance instantiation
// cites Afshani–Arge–Larsen [2] and Rahul [27] — structures far beyond
// reasonable reimplementation. The kd-tree provides the identical
// *interface contract* (output-sensitive prioritized reporting and max
// reporting) with practical performance close to polylogarithmic on the
// random workloads of the experiments; the reductions consume only the
// contract. QueryCostBound deliberately reports a practical polylog
// estimate: feeding the worst-case O(n^{1-1/d}) bound into Theorem 1's
// f = 12*lambda*B*Q_pri(n) would exceed n for every laptop-scale input
// and degenerate the structure into a scan (the regime where the paper's
// remark "Q_top = O(Q_pri) when Q_pri >= (n/B)^eps" holds trivially).
//
// Geo trait requirements (static members):
//   kDims                                  — dimensionality
//   double Coord(const E&, int dim)        — point coordinates
//   bool IntersectsBox(const Predicate&, const double* lo,
//                      const double* hi)   — predicate may meet the box
//   bool ContainsBox(const Predicate&, const double* lo,
//                    const double* hi)     — every box point matches

#ifndef TOPK_DOMINANCE_KDTREE_H_
#define TOPK_DOMINANCE_KDTREE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"

namespace topk::dominance {

template <typename Problem, typename Geo>
class KdTree {
 public:
  using Element = typename Problem::Element;
  using Predicate = typename Problem::Predicate;
  static constexpr int kDims = Geo::kDims;

  explicit KdTree(std::vector<Element> data) {
    nodes_.reserve(data.size());
    if (!data.empty()) root_ = Build(&data, 0, data.size(), 0);
  }

  size_t size() const { return nodes_.size(); }

  // Practical polylog estimate (see header comment).
  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    const double lg_n = std::log2(static_cast<double>(n));
    return std::max(1.0, lg_n * lg_n / lg_b);
  }

  template <typename Emit>
  void QueryPrioritized(const Predicate& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    VisitPrioritized(root_, q, tau, emit, stats);
  }

  std::optional<Element> QueryMax(const Predicate& q,
                                  QueryStats* stats = nullptr) const {
    const Element* best = nullptr;
    VisitMax(root_, q, &best, stats);
    if (best == nullptr) return std::nullopt;
    return *best;
  }

  template <typename F>
  void ForEach(F&& f) const {
    for (const Node& node : nodes_) f(node.element);
  }

 private:
  static constexpr int32_t kNil = -1;

  struct Node {
    Element element;
    double box_lo[kDims];
    double box_hi[kDims];
    double subtree_max_weight;
    int32_t left = kNil;
    int32_t right = kNil;
  };

  int32_t Build(std::vector<Element>* data, size_t lo, size_t hi,
                int depth) {
    if (lo >= hi) return kNil;
    const int dim = depth % kDims;
    const size_t mid = lo + (hi - lo) / 2;
    std::nth_element(data->begin() + lo, data->begin() + mid,
                     data->begin() + hi,
                     [dim](const Element& a, const Element& b) {
                       return Geo::Coord(a, dim) < Geo::Coord(b, dim);
                     });
    const int32_t idx = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[idx].element = (*data)[mid];
    const int32_t l = Build(data, lo, mid, depth + 1);
    const int32_t r = Build(data, mid + 1, hi, depth + 1);
    Node& node = nodes_[idx];
    node.left = l;
    node.right = r;
    for (int d = 0; d < kDims; ++d) {
      node.box_lo[d] = node.box_hi[d] = Geo::Coord(node.element, d);
    }
    node.subtree_max_weight = node.element.weight;
    for (int32_t child : {l, r}) {
      if (child == kNil) continue;
      const Node& c = nodes_[child];
      for (int d = 0; d < kDims; ++d) {
        node.box_lo[d] = std::min(node.box_lo[d], c.box_lo[d]);
        node.box_hi[d] = std::max(node.box_hi[d], c.box_hi[d]);
      }
      node.subtree_max_weight =
          std::max(node.subtree_max_weight, c.subtree_max_weight);
    }
    return idx;
  }

  template <typename Emit>
  bool VisitPrioritized(int32_t idx, const Predicate& q, double tau,
                        Emit& emit, QueryStats* stats) const {
    if (idx == kNil) return true;
    const Node& node = nodes_[idx];
    AddNodes(stats, 1);
    if (node.subtree_max_weight < tau) return true;
    if (!Geo::IntersectsBox(q, node.box_lo, node.box_hi)) return true;
    if (Geo::ContainsBox(q, node.box_lo, node.box_hi)) {
      return EmitSubtree(idx, tau, emit, stats);
    }
    if (node.element.weight >= tau && Problem::Matches(q, node.element)) {
      if (!emit(node.element)) return false;
    }
    return VisitPrioritized(node.left, q, tau, emit, stats) &&
           VisitPrioritized(node.right, q, tau, emit, stats);
  }

  template <typename Emit>
  bool EmitSubtree(int32_t idx, double tau, Emit& emit,
                   QueryStats* stats) const {
    if (idx == kNil) return true;
    const Node& node = nodes_[idx];
    AddNodes(stats, 1);
    if (node.subtree_max_weight < tau) return true;
    if (node.element.weight >= tau) {
      if (!emit(node.element)) return false;
    }
    return EmitSubtree(node.left, tau, emit, stats) &&
           EmitSubtree(node.right, tau, emit, stats);
  }

  // Branch-and-bound on the cached subtree max weights.
  void VisitMax(int32_t idx, const Predicate& q, const Element** best,
                QueryStats* stats) const {
    if (idx == kNil) return;
    const Node& node = nodes_[idx];
    if (*best != nullptr && node.subtree_max_weight < (*best)->weight) {
      return;
    }
    AddNodes(stats, 1);
    if (!Geo::IntersectsBox(q, node.box_lo, node.box_hi)) return;
    if (Problem::Matches(q, node.element)) {
      if (*best == nullptr || HeavierThan(node.element, **best)) {
        *best = &node.element;
      }
    }
    // Explore the heavier subtree first to tighten the bound early.
    int32_t first = node.left, second = node.right;
    if (first != kNil && second != kNil &&
        nodes_[second].subtree_max_weight >
            nodes_[first].subtree_max_weight) {
      std::swap(first, second);
    }
    VisitMax(first, q, best, stats);
    VisitMax(second, q, best, stats);
  }

  std::vector<Node> nodes_;
  int32_t root_ = kNil;
};

}  // namespace topk::dominance

#endif  // TOPK_DOMINANCE_KDTREE_H_
