// Problem definition: 3D dominance (Theorem 6).
//
// D is a set of weighted points in R^3; a predicate is a point
// q = (x, y, z), matched by every element e with e.x <= x, e.y <= y and
// e.z <= z. The paper's hotel query ("10 best-rated hotels with price
// <= x, distance <= y, security >= z" — flip the axis to make every
// constraint an upper bound) is this problem; examples/hotel_finder.cc
// runs it.
//
// Polynomial boundedness: q(D) is determined by the rank of each query
// coordinate among the n element coordinates — at most (n+1)^3 outcomes,
// lambda = 3.

#ifndef TOPK_DOMINANCE_POINT3_H_
#define TOPK_DOMINANCE_POINT3_H_

#include <cstdint>

#include "dominance/kdtree.h"

namespace topk::dominance {

struct Point3 {
  double x = 0, y = 0, z = 0;
  double weight = 0;
  uint64_t id = 0;
};

struct DominanceProblem {
  using Element = Point3;
  using Predicate = Point3;  // only x/y/z of the predicate are used
  static constexpr double kLambda = 3.0;

  static bool Matches(const Point3& q, const Point3& e) {
    return e.x <= q.x && e.y <= q.y && e.z <= q.z;
  }
};

struct DominanceGeo {
  static constexpr int kDims = 3;
  static double Coord(const Point3& e, int dim) {
    return dim == 0 ? e.x : (dim == 1 ? e.y : e.z);
  }
  // The dominance region of q is the box (-inf, q]; it meets [lo, hi]
  // iff lo <= q componentwise, and contains it iff hi <= q.
  static bool IntersectsBox(const Point3& q, const double* lo,
                            const double* hi) {
    (void)hi;
    return lo[0] <= q.x && lo[1] <= q.y && lo[2] <= q.z;
  }
  static bool ContainsBox(const Point3& q, const double* lo,
                          const double* hi) {
    (void)lo;
    return hi[0] <= q.x && hi[1] <= q.y && hi[2] <= q.z;
  }
};

// The Theorem 6 structures: one kd-tree serves as both the prioritized
// and the max structure (they are the same index queried differently;
// Theorem 2 still builds its own small sampled copies for the max role).
using DominanceKdTree = KdTree<DominanceProblem, DominanceGeo>;

}  // namespace topk::dominance

#endif  // TOPK_DOMINANCE_POINT3_H_
