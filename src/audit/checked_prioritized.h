// Debug-runtime verification of the prioritized-structure contract
// (core/problem.h): a transparent wrapper that re-validates every query.
//
// CheckedPrioritized<S, Problem> is itself a PrioritizedStructure over
// Problem and can be dropped into any reduction in place of S (the test
// sweeps do exactly that under -DTOPK_AUDIT=ON). On every
// QueryPrioritized call it verifies, aborting via TOPK_CHECK on
// violation:
//
//   * every emitted element Matches(q, e) and has w(e) >= tau;
//   * no element (by id) is emitted twice;
//   * emission halts after the sink returns false — one extra emit call
//     is a contract violation, not a rounding error;
//   * QueryStats counters are monotone (a query never decreases any);
//   * completeness: when the sink never stopped the query, the emitted
//     set is exactly {e in q(D) : w(e) >= tau}, checked against a
//     mirror copy of the data;
//   * optionally (EnableCostCheck) output-sensitive accounting:
//     nodes_visited grows by at most
//     per_query * Q_pri(n) + per_emit * (t + 1) — the Q_pri(n) + O(t)
//     shape with caller-chosen constants, off by default because the
//     right constants are structure-specific.
//
// The wrapper holds no mutable query state (all verification state is
// per-call), so it is exactly as thread-shareable as S; the substrate
// alias below lets serve/shareable.h recurse into S's own markers.

#ifndef TOPK_AUDIT_CHECKED_PRIORITIZED_H_
#define TOPK_AUDIT_CHECKED_PRIORITIZED_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/weighted.h"
#include "core/problem.h"

namespace topk::audit {

template <typename S, typename Problem>
  requires PrioritizedStructure<S, Problem>
class CheckedPrioritized {
 public:
  using Element = typename Problem::Element;
  using Predicate = typename Problem::Predicate;
  // Substrate alias: serve/shareable.h recurses through it, so wrapping
  // an EM-backed structure stays rejected by the thread-sharing gate.
  using Prioritized = S;

  explicit CheckedPrioritized(std::vector<Element> data)
      : mirror_(data), inner_(std::move(data)) {}

  size_t size() const { return inner_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    return S::QueryCostBound(n, block_size);
  }

  const S& inner() const { return inner_; }

  // Turns on the accounting-shape check with caller-chosen constants
  // (generous constants catch gross regressions — a structure that scans
  // everything — without tripping on a structure's honest constant
  // factors).
  void EnableCostCheck(double per_query, double per_emit,
                       size_t block_size = 2) {
    cost_per_query_ = per_query;
    cost_per_emit_ = per_emit;
    cost_block_size_ = block_size;
  }

  template <typename Emit>
  void QueryPrioritized(const Predicate& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    const QueryStats before = stats != nullptr ? *stats : QueryStats();
    std::unordered_set<uint64_t> emitted;
    bool sink_stopped = false;
    inner_.QueryPrioritized(
        q, tau,
        [&](const Element& e) {
          TOPK_CHECK(!sink_stopped);  // emitted past a false return
          TOPK_CHECK(Problem::Matches(q, e));
          TOPK_CHECK(MeetsThreshold(e, tau));
          TOPK_CHECK(emitted.insert(e.id).second);  // duplicate emission
          if (!emit(e)) {
            sink_stopped = true;
            return false;
          }
          return true;
        },
        stats);

    if (stats != nullptr) {
      QueryStats::ForEachField([&](const char*, auto member) {
        TOPK_CHECK(stats->*member >= before.*member);  // monotone
      });
      if (cost_per_query_ > 0.0) {
        const double spent = static_cast<double>(stats->nodes_visited -
                                                 before.nodes_visited);
        const double bound =
            cost_per_query_ *
                std::max(1.0, S::QueryCostBound(size(), cost_block_size_)) +
            cost_per_emit_ * (static_cast<double>(emitted.size()) + 1.0);
        TOPK_CHECK_LE(spent, bound);
      }
    }

    if (!sink_stopped) {
      // The query ran to completion: every emitted element already
      // checked Matches + threshold + uniqueness, so cardinality against
      // the mirror proves set equality.
      size_t expect = 0;
      for (const Element& e : mirror_) {
        if (Problem::Matches(q, e) && MeetsThreshold(e, tau)) ++expect;
      }
      TOPK_CHECK_EQ(emitted.size(), expect);
    }
  }

  // Enumeration passthrough (SampledTopK's global rebuilding probes for
  // it), available iff S has it.
  template <typename F>
  void ForEach(F&& f) const
    requires requires(const S& s) { s.ForEach(f); }
  {
    inner_.ForEach(std::forward<F>(f));
  }

  // --- Dynamic passthrough (mirror kept in lockstep) --------------------

  void Insert(const Element& e)
    requires DynamicStructure<S, Problem>
  {
    mirror_.push_back(e);
    inner_.Insert(e);
  }

  void Erase(const Element& e)
    requires DynamicStructure<S, Problem>
  {
    auto it = std::find_if(
        mirror_.begin(), mirror_.end(),
        [&e](const Element& m) { return m.id == e.id; });
    TOPK_CHECK(it != mirror_.end());  // erasing an absent element
    mirror_.erase(it);
    inner_.Erase(e);
  }

 private:
  std::vector<Element> mirror_;  // ground truth for completeness checks
  S inner_;
  double cost_per_query_ = 0.0;  // 0 = accounting-shape check disabled
  double cost_per_emit_ = 0.0;
  size_t cost_block_size_ = 2;
};

}  // namespace topk::audit

#endif  // TOPK_AUDIT_CHECKED_PRIORITIZED_H_
