// Debug-runtime verification of the max-structure contract
// (core/problem.h): a transparent wrapper that re-validates every query.
//
// CheckedMax<S, Problem> is itself a MaxStructure over Problem and can
// replace S in any reduction (the test sweeps do so under
// -DTOPK_AUDIT=ON). On every QueryMax call it verifies, aborting via
// TOPK_CHECK on violation:
//
//   * the result is nullopt iff q(D) is empty;
//   * otherwise the result Matches(q, e) and is THE heaviest matching
//     element under the (weight, id) total order — not merely some
//     matching element — checked against a mirror copy of the data;
//   * QueryStats counters are monotone.
//
// All verification state is per-call, so the wrapper is exactly as
// thread-shareable as S (the substrate alias lets serve/shareable.h
// recurse into S's markers).

#ifndef TOPK_AUDIT_CHECKED_MAX_H_
#define TOPK_AUDIT_CHECKED_MAX_H_

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/weighted.h"
#include "core/problem.h"

namespace topk::audit {

template <typename S, typename Problem>
  requires MaxStructure<S, Problem>
class CheckedMax {
 public:
  using Element = typename Problem::Element;
  using Predicate = typename Problem::Predicate;
  // Substrate alias for serve/shareable.h's recursive gate.
  using MaxSubstrate = S;

  explicit CheckedMax(std::vector<Element> data)
      : mirror_(data), inner_(std::move(data)) {}

  size_t size() const { return inner_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    return S::QueryCostBound(n, block_size);
  }

  const S& inner() const { return inner_; }

  std::optional<Element> QueryMax(const Predicate& q,
                                  QueryStats* stats = nullptr) const {
    const QueryStats before = stats != nullptr ? *stats : QueryStats();
    std::optional<Element> got = inner_.QueryMax(q, stats);
    if (stats != nullptr) {
      QueryStats::ForEachField([&](const char*, auto member) {
        TOPK_CHECK(stats->*member >= before.*member);  // monotone
      });
    }

    std::optional<Element> want;
    for (const Element& e : mirror_) {
      if (!Problem::Matches(q, e)) continue;
      if (!want.has_value() || HeavierThan(e, *want)) want = e;
    }
    TOPK_CHECK_EQ(got.has_value(), want.has_value());
    if (got.has_value()) {
      TOPK_CHECK(Problem::Matches(q, *got));
      TOPK_CHECK_EQ(got->id, want->id);  // the heaviest, not just heavy
    }
    return got;
  }

  // --- Dynamic passthrough (mirror kept in lockstep) --------------------

  void Insert(const Element& e)
    requires DynamicStructure<S, Problem>
  {
    mirror_.push_back(e);
    inner_.Insert(e);
  }

  void Erase(const Element& e)
    requires DynamicStructure<S, Problem>
  {
    auto it = std::find_if(
        mirror_.begin(), mirror_.end(),
        [&e](const Element& m) { return m.id == e.id; });
    TOPK_CHECK(it != mirror_.end());  // erasing an absent element
    mirror_.erase(it);
    inner_.Erase(e);
  }

  // Enumeration passthrough, so audited substrates stay usable where a
  // reduction (e.g. SampledTopK's converse audit sweep) enumerates its
  // max structure. Walks the inner structure, not the mirror: the
  // wrapper must expose exactly what S stores.
  template <typename F>
  void ForEach(F&& f) const
    requires requires(const S& s) { s.ForEach([](const Element&) {}); }
  {
    inner_.ForEach(std::forward<F>(f));
  }

 private:
  std::vector<Element> mirror_;  // ground truth for max re-computation
  S inner_;
};

}  // namespace topk::audit

#endif  // TOPK_AUDIT_CHECKED_MAX_H_
