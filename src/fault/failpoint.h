// Deterministic fault injection: failpoints and the site registry.
//
// A FailPoint decides, per call, whether a fault fires at one code
// site. Two trigger modes compose (either firing fires the point):
//   * every_nth — fires on calls N, 2N, 3N, ... (N = 1 means every
//     call). Fully deterministic; chaos tests use it to script exact
//     fault schedules.
//   * probability — an independent Bernoulli(p) per call, drawn from a
//     topk::Rng seeded at arm time, so a given (seed, call sequence)
//     always produces the same schedule. "Random" faults are therefore
//     replayable: re-arming with the same seed replays the run.
//
// An Injector is a registry of named sites ("block_device.read", ...).
// Instrumented code asks Trigger(site) on every operation; un-armed
// sites never fire and cost one hash lookup. Each site's Rng is seeded
// from the injector seed mixed with the site name, so arming sites in a
// different order does not change any site's schedule.
//
// Thread-safety: an Injector is deliberately single-threaded mutable
// state, like the BufferPool it typically sits under — the EM stack it
// instruments is single-threaded by contract (serve/shareable.h).

#ifndef TOPK_FAULT_FAILPOINT_H_
#define TOPK_FAULT_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/random.h"

namespace topk::fault {

struct FailPointConfig {
  double probability = 0.0;  // Bernoulli(p) per call; 0 disables
  uint64_t every_nth = 0;    // fire on every Nth call; 0 disables
};

class FailPoint {
 public:
  FailPoint(const FailPointConfig& config, uint64_t seed)
      : config_(config), rng_(seed) {}

  // Advances the deterministic state and reports whether the fault
  // fires on this call.
  bool Trigger() {
    ++calls_;
    bool fire = config_.every_nth > 0 && calls_ % config_.every_nth == 0;
    // The Bernoulli draw is skipped when every_nth already fired, so
    // the probability stream stays aligned with non-fired calls.
    if (!fire && config_.probability > 0.0) {
      fire = rng_.Bernoulli(config_.probability);
    }
    if (fire) ++triggers_;
    return fire;
  }

  uint64_t calls() const { return calls_; }
  uint64_t triggers() const { return triggers_; }

 private:
  FailPointConfig config_;
  Rng rng_;
  uint64_t calls_ = 0;
  uint64_t triggers_ = 0;
};

class Injector {
 public:
  explicit Injector(uint64_t seed = 0) : seed_(seed) {}

  // Arms (or re-arms, with a fresh schedule) the named site. Returns
  // the failpoint for counter inspection; the reference stays valid
  // until the site is re-armed or disarmed (std::map node stability).
  FailPoint& Arm(const std::string& site, const FailPointConfig& config) {
    return points_.insert_or_assign(site, FailPoint(config, SiteSeed(site)))
        .first->second;
  }

  void Disarm(const std::string& site) { points_.erase(site); }
  void DisarmAll() { points_.clear(); }

  // nullptr when the site is not armed.
  const FailPoint* Find(const std::string& site) const {
    auto it = points_.find(site);
    return it == points_.end() ? nullptr : &it->second;
  }

  // The instrumentation hook: false for un-armed sites.
  bool Trigger(const std::string& site) {
    auto it = points_.find(site);
    return it != points_.end() && it->second.Trigger();
  }

  uint64_t triggers(const std::string& site) const {
    const FailPoint* p = Find(site);
    return p == nullptr ? 0 : p->triggers();
  }
  uint64_t calls(const std::string& site) const {
    const FailPoint* p = Find(site);
    return p == nullptr ? 0 : p->calls();
  }

 private:
  // FNV-1a over the site name, mixed into the injector seed: the same
  // (seed, site) pair always yields the same schedule, independent of
  // arm order or of what other sites exist.
  uint64_t SiteSeed(const std::string& site) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : site) {
      h ^= static_cast<uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    return h ^ seed_;
  }

  uint64_t seed_;
  std::map<std::string, FailPoint> points_;
};

}  // namespace topk::fault

#endif  // TOPK_FAULT_FAILPOINT_H_
