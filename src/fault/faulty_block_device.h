// Fault-injecting BlockDevice decorator.
//
// Interposes an Injector between a BufferPool (or any device client)
// and the backing store. Three well-known sites:
//   * kReadFaultSite / kWriteFaultSite — when the site triggers, the
//     transfer does NOT happen (the wrapped device is never called, no
//     I/O is counted) and TryRead/TryWrite report kTransientFailure.
//     Retrying the operation re-rolls the site.
//   * kLatencySite — consulted on every transfer (before the fault
//     roll); when it triggers, options.spike_ns is added to the
//     simulated latency tally. By default the spike is accounting-only
//     so tests stay deterministic; options.real_sleep additionally
//     sleeps for the spike (benchmarks only — this header is the
//     sanctioned home for sleep_for, see tools/lint.py's sleep rule).
//
// Determinism: all randomness lives in the Injector's per-site Rng
// streams, so a fixed (seed, operation sequence) yields a fixed fault
// schedule — chaos tests replay schedules exactly and compare counters
// against FailPoint trigger counts.

#ifndef TOPK_FAULT_FAULTY_BLOCK_DEVICE_H_
#define TOPK_FAULT_FAULTY_BLOCK_DEVICE_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/check.h"
#include "em/block_device.h"
#include "fault/failpoint.h"
#include "fault/forwarding_block_device.h"

namespace topk::fault {

inline constexpr const char kReadFaultSite[] = "block_device.read";
inline constexpr const char kWriteFaultSite[] = "block_device.write";
inline constexpr const char kLatencySite[] = "block_device.latency";

class FaultyBlockDevice final : public ForwardingBlockDevice {
 public:
  struct Options {
    uint64_t spike_ns = 0;    // latency added per kLatencySite trigger
    bool real_sleep = false;  // actually sleep the spike (benchmarks)
  };

  FaultyBlockDevice(em::BlockDevice* inner, Injector* injector)
      : FaultyBlockDevice(inner, injector, Options()) {}

  FaultyBlockDevice(em::BlockDevice* inner, Injector* injector,
                    const Options& options)
      : ForwardingBlockDevice(inner), injector_(injector),
        options_(options) {
    TOPK_CHECK(injector_ != nullptr);
  }

  [[nodiscard]] em::IoResult TryRead(uint64_t page_id,
                                     uint8_t* out) override {
    MaybeSpike();
    if (injector_->Trigger(kReadFaultSite)) {
      ++read_faults_;
      return em::IoResult::kTransientFailure;
    }
    return inner()->TryRead(page_id, out);
  }

  [[nodiscard]] em::IoResult TryWrite(uint64_t page_id,
                                      const uint8_t* data) override {
    MaybeSpike();
    if (injector_->Trigger(kWriteFaultSite)) {
      ++write_faults_;
      return em::IoResult::kTransientFailure;
    }
    return inner()->TryWrite(page_id, data);
  }

  // Faults injected by THIS decorator (== the injector's trigger counts
  // for the two fault sites, tracked here so a chaos test can hold the
  // identity faults == retries + giveups without reaching the injector).
  uint64_t read_faults() const { return read_faults_; }
  uint64_t write_faults() const { return write_faults_; }
  uint64_t latency_spikes() const { return latency_spikes_; }
  uint64_t simulated_latency_ns() const { return simulated_latency_ns_; }

 private:
  void MaybeSpike() {
    if (options_.spike_ns == 0) return;
    if (!injector_->Trigger(kLatencySite)) return;
    ++latency_spikes_;
    simulated_latency_ns_ += options_.spike_ns;
    if (options_.real_sleep) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options_.spike_ns));
    }
  }

  Injector* injector_;
  Options options_;
  uint64_t read_faults_ = 0;
  uint64_t write_faults_ = 0;
  uint64_t latency_spikes_ = 0;
  uint64_t simulated_latency_ns_ = 0;
};

}  // namespace topk::fault

#endif  // TOPK_FAULT_FAULTY_BLOCK_DEVICE_H_
