// Decorator base for em::BlockDevice: forwards every operation to a
// wrapped device. FaultyBlockDevice and RetryingBlockDevice override
// just the transfer primitives; everything else — allocation, page
// count, the I/O counters — resolves to the bottom of the chain, so a
// BufferPool stacked on any decorator chain sees one coherent device
// and one set of counters. (The em::BlockDevice base's own page store
// and counters stay empty/unused in a decorator.)

#ifndef TOPK_FAULT_FORWARDING_BLOCK_DEVICE_H_
#define TOPK_FAULT_FORWARDING_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "em/block_device.h"

namespace topk::fault {

class ForwardingBlockDevice : public em::BlockDevice {
 public:
  explicit ForwardingBlockDevice(em::BlockDevice* inner)
      : em::BlockDevice(inner == nullptr ? 1 : inner->page_size()),
        inner_(inner) {
    TOPK_CHECK(inner_ != nullptr);
  }

  size_t num_pages() const override { return inner_->num_pages(); }
  uint64_t Allocate() override { return inner_->Allocate(); }

  [[nodiscard]] em::IoResult TryRead(uint64_t page_id,
                                     uint8_t* out) override {
    return inner_->TryRead(page_id, out);
  }
  [[nodiscard]] em::IoResult TryWrite(uint64_t page_id,
                                      const uint8_t* data) override {
    return inner_->TryWrite(page_id, data);
  }

  const em::IoCounters& counters() const override {
    return inner_->counters();
  }
  em::IoCounters* mutable_counters() override {
    return inner_->mutable_counters();
  }

 protected:
  em::BlockDevice* inner() const { return inner_; }

 private:
  em::BlockDevice* inner_;
};

}  // namespace topk::fault

#endif  // TOPK_FAULT_FORWARDING_BLOCK_DEVICE_H_
