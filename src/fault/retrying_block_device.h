// Bounded retry-with-backoff BlockDevice decorator.
//
// Each transfer is attempted up to options.max_attempts times. Every
// failed attempt that is followed by another attempt counts one
// `retries` in the chain's IoCounters; exhausting the budget counts one
// `giveups` and surfaces kTransientFailure to the caller (who degrades:
// BufferPool poisons the frame, em::FallibleTopK flags the result).
// Because the wrapped device only counts transfers that succeed, a run
// whose faults are all absorbed by retry has I/O counts IDENTICAL to
// the fault-free run — the chaos tests assert exactly that, plus the
// accounting identity  faults injected == retries + giveups.
//
// Backoff between attempts is exponential (base_ns, multiplier) and
// accounted in simulated_backoff_ns(); by default it is accounting-only
// so tests stay deterministic. options.real_sleep actually sleeps the
// backoff (benchmarks only — this header is a sanctioned home for
// sleep_for, see tools/lint.py's sleep rule).

#ifndef TOPK_FAULT_RETRYING_BLOCK_DEVICE_H_
#define TOPK_FAULT_RETRYING_BLOCK_DEVICE_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/check.h"
#include "em/block_device.h"
#include "fault/forwarding_block_device.h"

namespace topk::fault {

class RetryingBlockDevice final : public ForwardingBlockDevice {
 public:
  struct Options {
    size_t max_attempts = 3;        // total attempts, including the first
    uint64_t backoff_base_ns = 1000;
    double backoff_multiplier = 2.0;
    bool real_sleep = false;
  };

  explicit RetryingBlockDevice(em::BlockDevice* inner)
      : RetryingBlockDevice(inner, Options()) {}

  RetryingBlockDevice(em::BlockDevice* inner, const Options& options)
      : ForwardingBlockDevice(inner), options_(options) {
    TOPK_CHECK(options_.max_attempts >= 1);
    TOPK_CHECK(options_.backoff_multiplier >= 1.0);
  }

  [[nodiscard]] em::IoResult TryRead(uint64_t page_id,
                                     uint8_t* out) override {
    return WithRetries(
        [this, page_id, out] { return inner()->TryRead(page_id, out); });
  }

  [[nodiscard]] em::IoResult TryWrite(uint64_t page_id,
                                      const uint8_t* data) override {
    return WithRetries([this, page_id, data] {
      return inner()->TryWrite(page_id, data);
    });
  }

  // Total backoff this decorator would have slept (and did sleep, when
  // real_sleep is set).
  uint64_t simulated_backoff_ns() const { return simulated_backoff_ns_; }

 private:
  template <typename Op>
  em::IoResult WithRetries(Op&& op) {
    uint64_t backoff_ns = options_.backoff_base_ns;
    for (size_t attempt = 1;; ++attempt) {
      if (op() == em::IoResult::kOk) return em::IoResult::kOk;
      if (attempt >= options_.max_attempts) {
        ++mutable_counters()->giveups;
        return em::IoResult::kTransientFailure;
      }
      ++mutable_counters()->retries;
      Backoff(&backoff_ns);
    }
  }

  void Backoff(uint64_t* backoff_ns) {
    simulated_backoff_ns_ += *backoff_ns;
    if (options_.real_sleep) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(*backoff_ns));
    }
    *backoff_ns = static_cast<uint64_t>(
        static_cast<double>(*backoff_ns) * options_.backoff_multiplier);
  }

  Options options_;
  uint64_t simulated_backoff_ns_ = 0;
};

}  // namespace topk::fault

#endif  // TOPK_FAULT_RETRYING_BLOCK_DEVICE_H_
