// Deterministic crash points: kill the process's durable effects at
// exactly the N-th storage operation of a schedule.
//
// CrashClock is one shared counter of durable-effecting operations
// (Write / Sync / Truncate) across every storage a store touches — the
// WAL file, the manifest file, the page store — in program order (the
// EM stack is single-threaded by contract, so the interleaving is the
// call order and the count is exactly reproducible run over run).
// CrashPointStorage wraps each ByteStorage and consults the clock: the
// first `crash_at` operations pass through; every later operation is
// dropped before reaching the inner storage and reports failure, which
// models "the process died at that instant — nothing after it ever
// reached the kernel".
//
// The harness (tests/crash_recovery_test.cc) runs a seeded
// insert/erase/checkpoint schedule once with the clock unarmed to count
// total operations T, then re-runs it T+1 times with crash_at =
// 0, 1, ..., T. After each crash it discards the un-synced tail via
// MemStorage::SimulateCrash (sweeping the flushed-prefix/torn-write
// choices the page cache could have made), reopens fresh objects over
// the surviving bytes, Recover()s, and asserts brute-force-exact
// state — every fault site in the schedule gets its crash, exhaustively.

#ifndef TOPK_FAULT_CRASH_POINT_H_
#define TOPK_FAULT_CRASH_POINT_H_

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "em/block_device.h"
#include "em/storage.h"

namespace topk::fault {

class CrashClock {
 public:
  static constexpr uint64_t kNever = ~uint64_t{0};

  // crash_at = number of durable operations allowed to happen; the
  // (crash_at + 1)-th and later are dropped. kNever disarms.
  explicit CrashClock(uint64_t crash_at = kNever) : crash_at_(crash_at) {}

  // Accounts one durable operation; false iff the crash has struck.
  bool Advance() {
    if (ops_ >= crash_at_) return false;
    ++ops_;
    return true;
  }

  bool crashed() const { return ops_ >= crash_at_; }
  uint64_t ops() const { return ops_; }

 private:
  uint64_t crash_at_;
  uint64_t ops_ = 0;
};

class CrashPointStorage final : public em::ByteStorage {
 public:
  CrashPointStorage(em::ByteStorage* inner, CrashClock* clock)
      : inner_(inner), clock_(clock) {
    TOPK_CHECK(inner_ != nullptr);
    TOPK_CHECK(clock_ != nullptr);
  }

  uint64_t size() const override { return inner_->size(); }

  // Reads model the process's own memory/page-cache view and are not
  // durable operations; a crashed run stops issuing them because every
  // mutation path bails on its first failed write/sync.
  void Read(uint64_t offset, size_t len, uint8_t* out) const override {
    inner_->Read(offset, len, out);
  }

  [[nodiscard]] em::IoResult Write(uint64_t offset, const uint8_t* data,
                                   size_t len) override {
    if (!clock_->Advance()) return em::IoResult::kTransientFailure;
    return inner_->Write(offset, data, len);
  }

  [[nodiscard]] em::IoResult Sync() override {
    if (!clock_->Advance()) return em::IoResult::kTransientFailure;
    return inner_->Sync();
  }

  [[nodiscard]] em::IoResult Truncate(uint64_t new_size) override {
    if (!clock_->Advance()) return em::IoResult::kTransientFailure;
    return inner_->Truncate(new_size);
  }

 private:
  em::ByteStorage* inner_;
  CrashClock* clock_;
};

}  // namespace topk::fault

#endif  // TOPK_FAULT_CRASH_POINT_H_
