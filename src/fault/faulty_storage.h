// Fault-injecting ByteStorage decorator: the durable layer's failure
// modes, driven by the same deterministic Injector as the block-device
// faults.
//
// Two sites:
//   * kTornWriteSite — when it fires, only a PREFIX of the write
//     reaches the inner storage (default: half, configurable) and the
//     caller sees kTransientFailure. This is the real-disk torn write:
//     bytes landed, the syscall "failed", and only the caller's framing
//     (WAL record CRC, manifest slot CRC) makes the damage detectable.
//   * kShortSyncSite — when it fires, the sync does NOT reach the
//     inner storage and reports kTransientFailure: an fsync that
//     returned without making anything durable. A caller that treats
//     the commit as failed (DurableStore does) stays correct; the
//     crash-recovery tests pin that.
//
// Truncates pass through un-faulted (they are metadata ops the
// protocols already order around); reads are infallible at this layer
// by the ByteStorage contract.

#ifndef TOPK_FAULT_FAULTY_STORAGE_H_
#define TOPK_FAULT_FAULTY_STORAGE_H_

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "em/block_device.h"
#include "em/storage.h"
#include "fault/failpoint.h"

namespace topk::fault {

inline constexpr const char kTornWriteSite[] = "storage.torn_write";
inline constexpr const char kShortSyncSite[] = "storage.short_sync";

class FaultyStorage final : public em::ByteStorage {
 public:
  struct Options {
    // Numerator/denominator of the fraction of a torn write that still
    // lands (1/2 by default; 0/1 drops the write entirely).
    uint64_t torn_keep_num = 1;
    uint64_t torn_keep_den = 2;
  };

  FaultyStorage(em::ByteStorage* inner, Injector* injector)
      : FaultyStorage(inner, injector, Options()) {}

  FaultyStorage(em::ByteStorage* inner, Injector* injector,
                const Options& options)
      : inner_(inner), injector_(injector), options_(options) {
    TOPK_CHECK(inner_ != nullptr);
    TOPK_CHECK(injector_ != nullptr);
    TOPK_CHECK(options_.torn_keep_den > 0);
  }

  uint64_t size() const override { return inner_->size(); }

  void Read(uint64_t offset, size_t len, uint8_t* out) const override {
    inner_->Read(offset, len, out);
  }

  [[nodiscard]] em::IoResult Write(uint64_t offset, const uint8_t* data,
                                   size_t len) override {
    if (injector_->Trigger(kTornWriteSite)) {
      ++torn_writes_;
      const size_t keep = static_cast<size_t>(
          (static_cast<uint64_t>(len) * options_.torn_keep_num) /
          options_.torn_keep_den);
      if (keep > 0) {
        // The prefix lands regardless of what the inner storage says —
        // the torn bytes are already gone from the caller's control.
        (void)inner_->Write(offset, data, keep);
      }
      return em::IoResult::kTransientFailure;
    }
    return inner_->Write(offset, data, len);
  }

  [[nodiscard]] em::IoResult Sync() override {
    if (injector_->Trigger(kShortSyncSite)) {
      ++short_syncs_;
      return em::IoResult::kTransientFailure;
    }
    return inner_->Sync();
  }

  [[nodiscard]] em::IoResult Truncate(uint64_t new_size) override {
    return inner_->Truncate(new_size);
  }

  uint64_t torn_writes() const { return torn_writes_; }
  uint64_t short_syncs() const { return short_syncs_; }

 private:
  em::ByteStorage* inner_;
  Injector* injector_;
  Options options_;
  uint64_t torn_writes_ = 0;
  uint64_t short_syncs_ = 0;
};

}  // namespace topk::fault

#endif  // TOPK_FAULT_FAULTY_STORAGE_H_
