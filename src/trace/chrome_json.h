// Chrome trace-event JSON export (the "trace event format" consumed by
// chrome://tracing and Perfetto's legacy importer).
//
// Spans become "X" (complete) events with microsecond ts/dur and their
// arguments under "args"; instants become "i" events. Each tracer maps
// to one tid under pid 0, with an optional thread_name metadata record,
// so an engine's per-worker tracers render as parallel tracks. Nesting
// is inferred by the viewer from timestamp containment — parent ids are
// not exported (tests inspect Tracer::events() directly for those).
//
// Event and argument names are stored as raw string literals and are
// emitted unescaped: keep them to identifier-like characters (no
// quotes, backslashes, or control characters).

#ifndef TOPK_TRACE_CHROME_JSON_H_
#define TOPK_TRACE_CHROME_JSON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/format.h"
#include "trace/tracer.h"

namespace topk::trace {

// Appends one tracer's events (plus a thread_name metadata record when
// `thread_name` is non-null) as comma-separated JSON objects. `*first`
// tracks whether a comma is owed; share it across calls that fill one
// traceEvents array.
inline void AppendChromeEvents(const Tracer& tracer, uint64_t tid,
                               const char* thread_name, bool* first,
                               std::string* out) {
  auto comma = [first, out] {
    if (!*first) out->push_back(',');
    *first = false;
  };
  if (thread_name != nullptr) {
    comma();
    AppendF(out,
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
            "\"tid\":%llu,\"args\":{\"name\":\"%s\"}}",
            static_cast<unsigned long long>(tid), thread_name);
  }
  for (const Tracer::Event& e : tracer.events()) {
    comma();
    const double ts_us = static_cast<double>(e.start_ns) / 1000.0;
    if (e.kind == Tracer::EventKind::kSpan) {
      const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
      AppendF(out,
              "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%llu,"
              "\"ts\":%.3f,\"dur\":%.3f",
              e.name, static_cast<unsigned long long>(tid), ts_us, dur_us);
    } else {
      AppendF(out,
              "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
              "\"tid\":%llu,\"ts\":%.3f",
              e.name, static_cast<unsigned long long>(tid), ts_us);
    }
    if (e.num_args > 0) {
      out->append(",\"args\":{");
      for (size_t a = 0; a < e.num_args; ++a) {
        AppendF(out, "%s\"%s\":%llu", a == 0 ? "" : ",", e.arg_names[a],
                static_cast<unsigned long long>(e.arg_values[a]));
      }
      out->push_back('}');
    }
    out->push_back('}');
  }
}

// One self-contained trace document from any number of tracers (null
// entries are skipped); tid = index. The result loads directly into
// Perfetto / chrome://tracing.
inline std::string ChromeTraceJson(
    const std::vector<const Tracer*>& tracers) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (size_t t = 0; t < tracers.size(); ++t) {
    if (tracers[t] == nullptr) continue;
    AppendChromeEvents(*tracers[t], t, nullptr, &first, &out);
  }
  out += "]}";
  return out;
}

}  // namespace topk::trace

#endif  // TOPK_TRACE_CHROME_JSON_H_
