// Per-query structured tracing: WHERE a query's cost went, not just how
// much it was.
//
// QueryStats (common/stats.h) answers "how many I/Os / emissions did
// this query charge in total"; the paper's analysis, though, is about
// attribution — which core-set level answered a Theorem 1 query, how
// many rounds Lemma 3's protocol burned, which monitored prioritized
// query issued which device reads. A Tracer records exactly that as a
// bounded sequence of events:
//
//   * SPANS — RAII-nested intervals (trace::Span) naming a phase of a
//     query ("monitored_query", "thm2_round", "request", ...), each
//     carrying up to kMaxArgs named integer arguments;
//   * INSTANTS — point events ("fallback");
//   * COUNTERS — trace::Count(tracer, "em_read", 1) accumulates a named
//     argument on the innermost open span, which is how the EM
//     BufferPool attributes device I/O to whatever phase pinned the
//     page.
//
// Cost-attribution contract: a span opened with a QueryStats* snapshots
// the counters and, on close, records its SELF counts — the growth of
// each QueryStats field during the span minus the growth inside child
// spans tracking the same QueryStats object — as arguments named
// exactly like the fields. Self counts telescope: summed over every
// span of a query they reproduce the query's QueryStats totals EXACTLY
// (asserted by tests/tools/trace_roundtrip.py against a live engine).
//
// Overhead contract (mirrors the QueryStats* convention): every entry
// point takes a nullable Tracer*; the disabled path is one pointer
// comparison per call site and the enabled path never allocates —
// events land in a buffer preallocated at construction (when it fills,
// new events are dropped and counted, never reallocated) and open
// spans live in a fixed-depth stack. E23 (bench_trace) measures both
// paths.
//
// Thread-safety: a Tracer is single-owner mutable state, exactly like a
// QueryStats tally — one per worker thread (serve::QueryEngine owns
// num_threads + 1: one per worker plus a coordinator), merged only
// after a barrier. Never share one across concurrent queries.
//
// Dereference discipline: outside src/trace/, never dereference a
// Tracer* directly — go through trace::Span / trace::Count /
// trace::Instant, which tolerate null (tools/lint.py's `tracer` rule
// enforces this).

#ifndef TOPK_TRACE_TRACER_H_
#define TOPK_TRACE_TRACER_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace topk::trace {

class Tracer {
 public:
  // Room for every QueryStats field (8) plus user arguments (budgets,
  // levels, verdicts, EM counters) on one span.
  static constexpr size_t kMaxArgs = 16;
  // Spans nest along a single query path (request > exec > reduction >
  // chain levels > monitored query); depth stays in single digits.
  static constexpr size_t kMaxDepth = 32;

  enum class EventKind : uint8_t { kSpan, kInstant };

  // One recorded event. `name` and the argument names are required to
  // be string literals (or otherwise outlive the tracer): events store
  // the pointers, never copies.
  struct Event {
    const char* name = nullptr;
    uint64_t id = 0;        // unique per tracer, in begin order
    uint64_t parent = 0;    // id of the enclosing span; 0 = top level
    uint64_t start_ns = 0;  // relative to the tracer's construction
    uint64_t dur_ns = 0;    // 0 for instants
    EventKind kind = EventKind::kSpan;
    size_t num_args = 0;
    std::array<const char*, kMaxArgs> arg_names{};
    std::array<uint64_t, kMaxArgs> arg_values{};
  };

  explicit Tracer(size_t capacity) : capacity_(capacity) {
    TOPK_CHECK(capacity_ >= 1);
    buffer_.reserve(capacity_);
    epoch_ = Clock::now();
  }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- recording (prefer the Span RAII + free helpers below) ----------
  //
  // The recording bodies are noinline: they only execute when tracing
  // is enabled (a call is noise next to their two clock reads), and
  // inlining them at every instrumented call site bloats the caller
  // past the compiler's inlining budget — measurably de-inlining hot
  // query loops even when tracing is off.

  // Opens a span; returns its id (pass back to EndSpan — enforces LIFO).
  // `stats` may be null (no cost attribution); when non-null it must
  // stay valid and only grow until the span closes.
  __attribute__((noinline)) uint64_t BeginSpan(
      const char* name, const QueryStats* stats = nullptr) {
    TOPK_CHECK(depth_ < kMaxDepth);
    OpenSpan& s = open_[depth_];
    ++depth_;
    s.name = name;
    s.id = next_id_++;
    s.parent = depth_ >= 2 ? open_[depth_ - 2].id : 0;
    s.start_ns = NowNs();
    s.stats = stats;
    if (stats != nullptr) s.at_open = *stats;
    s.child_sum = QueryStats();
    s.num_args = 0;
    return s.id;
  }

  __attribute__((noinline)) void EndSpan(uint64_t id) {
    TOPK_CHECK(depth_ > 0);
    OpenSpan& s = open_[depth_ - 1];
    TOPK_CHECK_EQ(s.id, id);  // spans close strictly LIFO
    const uint64_t end_ns = NowNs();
    if (s.stats != nullptr) {
      // Self = inclusive growth minus the children's inclusive growth;
      // nonzero self counts become arguments named like the fields.
      QueryStats::ForEachField([&s](const char* field, auto member) {
        const uint64_t inclusive = s.stats->*member - s.at_open.*member;
        const uint64_t self = inclusive - s.child_sum.*member;
        if (self != 0) AddArg(&s, field, self);
      });
      if (depth_ >= 2 && open_[depth_ - 2].stats == s.stats) {
        OpenSpan& parent = open_[depth_ - 2];
        QueryStats::ForEachField([&s, &parent](const char*, auto member) {
          parent.child_sum.*member += s.stats->*member - s.at_open.*member;
        });
      }
    }
    Event e;
    e.name = s.name;
    e.id = s.id;
    e.parent = s.parent;
    e.start_ns = s.start_ns;
    e.dur_ns = end_ns - s.start_ns;
    e.kind = EventKind::kSpan;
    e.num_args = s.num_args;
    e.arg_names = s.arg_names;
    e.arg_values = s.arg_values;
    Push(e);
    --depth_;
  }

  __attribute__((noinline)) void RecordInstant(const char* name) {
    Event e;
    e.name = name;
    e.id = next_id_++;
    e.parent = depth_ > 0 ? open_[depth_ - 1].id : 0;
    e.start_ns = NowNs();
    e.kind = EventKind::kInstant;
    Push(e);
  }

  // Accumulates `delta` into the argument `name` of the innermost open
  // span (same-name arguments merge by addition, compared by content so
  // literals from different translation units unify). With no open span
  // the count has nothing to attach to and is dropped by design.
  __attribute__((noinline)) void CountInCurrent(const char* name,
                                                uint64_t delta) {
    if (depth_ == 0) return;
    AddArg(&open_[depth_ - 1], name, delta);
  }

  // --- inspection -----------------------------------------------------

  // Recorded events in close order for spans (a child closes before its
  // parent), record order for instants.
  const std::vector<Event>& events() const { return buffer_; }
  size_t capacity() const { return capacity_; }
  // Events discarded because the buffer was full.
  uint64_t dropped() const { return dropped_; }
  // Spans currently open (nonzero only mid-query).
  size_t open_depth() const { return depth_; }

  // Drops recorded events (open spans survive; the epoch is unchanged
  // so timestamps stay comparable across a Clear).
  void Clear() {
    buffer_.clear();
    dropped_ = 0;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct OpenSpan {
    const char* name = nullptr;
    uint64_t id = 0;
    uint64_t parent = 0;
    uint64_t start_ns = 0;
    const QueryStats* stats = nullptr;
    QueryStats at_open;    // *stats when the span opened
    QueryStats child_sum;  // closed children's inclusive growth
    size_t num_args = 0;
    std::array<const char*, kMaxArgs> arg_names{};
    std::array<uint64_t, kMaxArgs> arg_values{};
  };

  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch_)
            .count());
  }

  static void AddArg(OpenSpan* s, const char* name, uint64_t delta) {
    for (size_t a = 0; a < s->num_args; ++a) {
      if (std::strcmp(s->arg_names[a], name) == 0) {
        s->arg_values[a] += delta;
        return;
      }
    }
    if (s->num_args >= kMaxArgs) return;  // full: bounded by design
    s->arg_names[s->num_args] = name;
    s->arg_values[s->num_args] = delta;
    ++s->num_args;
  }

  void Push(const Event& e) {
    if (buffer_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    buffer_.push_back(e);
  }

  size_t capacity_;
  std::vector<Event> buffer_;  // preallocated; never grows past capacity_
  std::array<OpenSpan, kMaxDepth> open_;
  size_t depth_ = 0;
  uint64_t next_id_ = 1;
  uint64_t dropped_ = 0;
  Clock::time_point epoch_;
};

// RAII span. Tolerates a null tracer (the disabled path: one branch at
// open and one at close, nothing else). Non-copyable and non-movable so
// scopes map one-to-one onto spans and nesting stays LIFO.
class Span {
 public:
  Span(Tracer* tracer, const char* name,
       const QueryStats* stats = nullptr)
      : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(name, stats);
  }
  ~Span() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches (or accumulates into) a named argument. Only valid while
  // this span is the innermost open one — i.e. call between child
  // spans, not while one is open.
  void Arg(const char* name, uint64_t value) {
    if (tracer_ != nullptr) tracer_->CountInCurrent(name, value);
  }

 private:
  Tracer* tracer_;
  uint64_t id_ = 0;
};

// Null-safe free helpers: the only way code outside src/trace/ should
// touch a Tracer* (see the lint `tracer` rule).
inline void Count(Tracer* tracer, const char* name, uint64_t delta) {
  if (tracer != nullptr) tracer->CountInCurrent(name, delta);
}

inline void Instant(Tracer* tracer, const char* name) {
  if (tracer != nullptr) tracer->RecordInstant(name);
}

}  // namespace topk::trace

#endif  // TOPK_TRACE_TRACER_H_
