// Problem definition: circular range reporting (Corollary 1).
//
// D is a set of weighted points in R^2; a predicate is a disk
// (center, radius), matched by every point within Euclidean distance r.
//
// The paper derives its circular bounds from halfspace reporting one
// dimension up via the standard lifting trick (map (x, y) onto the
// paraboloid (x, y, x^2 + y^2); a disk becomes a halfspace). Our
// substrate — the weight-augmented kd-tree — handles the disk predicate
// *directly* through its box tests, which is exactly the lifted
// halfspace restricted back to the paraboloid; the lifting identity is
// unit-tested in circle_test.cc.
//
// Polynomial boundedness: a circle through <= 3 input points bounds each
// distinct outcome — O(n^3) outcomes, lambda = 3.

#ifndef TOPK_CIRCLE_CIRCULAR_H_
#define TOPK_CIRCLE_CIRCULAR_H_

#include <algorithm>
#include <cstdint>

#include "dominance/kdtree.h"

namespace topk::circle {

struct WPoint2 {
  double x = 0, y = 0;
  double weight = 0;
  uint64_t id = 0;
};

struct Disk {
  double cx = 0, cy = 0;
  double r = 0;
};

struct CircularProblem {
  using Element = WPoint2;
  using Predicate = Disk;
  static constexpr double kLambda = 3.0;

  static bool Matches(const Disk& q, const WPoint2& e) {
    const double dx = e.x - q.cx, dy = e.y - q.cy;
    return dx * dx + dy * dy <= q.r * q.r;
  }
};

struct CircularGeo {
  static constexpr int kDims = 2;
  static double Coord(const WPoint2& e, int dim) {
    return dim == 0 ? e.x : e.y;
  }
  static bool IntersectsBox(const Disk& q, const double* lo,
                            const double* hi) {
    // Squared distance from the center to the box.
    double d2 = 0;
    const double c[2] = {q.cx, q.cy};
    for (int d = 0; d < 2; ++d) {
      if (c[d] < lo[d]) {
        const double g = lo[d] - c[d];
        d2 += g * g;
      } else if (c[d] > hi[d]) {
        const double g = c[d] - hi[d];
        d2 += g * g;
      }
    }
    return d2 <= q.r * q.r;
  }
  static bool ContainsBox(const Disk& q, const double* lo,
                          const double* hi) {
    // The farthest box corner must be inside the disk.
    double d2 = 0;
    const double c[2] = {q.cx, q.cy};
    for (int d = 0; d < 2; ++d) {
      const double g = std::max(hi[d] - c[d], c[d] - lo[d]);
      d2 += g * g;
    }
    return d2 <= q.r * q.r;
  }
};

using CircularKdTree = dominance::KdTree<CircularProblem, CircularGeo>;

// The lifting trick (de Berg et al. [17], used by Corollary 1): a point
// p = (x, y) lies in the disk of center (a, b) and radius r iff its lift
// (x, y, x^2 + y^2) lies below the plane
//   z = 2a*x + 2b*y + (r^2 - a^2 - b^2).
// Exposed for tests and the documentation example.
inline double LiftZ(double x, double y) { return x * x + y * y; }
inline bool LiftedHalfspaceContains(const Disk& q, double x, double y) {
  const double z = LiftZ(x, y);
  return z - 2 * q.cx * x - 2 * q.cy * y <=
         q.r * q.r - q.cx * q.cx - q.cy * q.cy;
}

}  // namespace topk::circle

#endif  // TOPK_CIRCLE_CIRCULAR_H_
