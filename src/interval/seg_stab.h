// Prioritized interval stabbing: a segment tree over the elementary
// slabs of the endpoints, with each canonical list sorted by descending
// weight.
//
// Substitution note (see DESIGN.md): the paper plugs in Tao's external
// ray-stabbing structure [34] (O(n/B) space, O(log_B n + t/B) query);
// this structure provides the identical prioritized contract in RAM —
// O(log n + t) query — at O(n log n) space, which is geometrically
// converging as Theorem 1 requires.
//
// Key property making the query output-sensitive: the canonical ranges
// an element is assigned to are *disjoint*, so a stabbing point's
// root-to-leaf path meets each stored element in at most one list;
// every list is scanned in descending weight order and abandoned at the
// first weight < tau. Total: O(log n + t), no duplicates.
//
// The structure is generic over the element type: `Span` maps an element
// to its closed 1D extent (Lo/Hi). Point enclosure (Theorem 5) reuses it
// per x-canonical node with rectangles projected onto y.

#ifndef TOPK_INTERVAL_SEG_STAB_H_
#define TOPK_INTERVAL_SEG_STAB_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"
#include "interval/interval.h"

namespace topk::interval {

template <typename E, typename Span>
class SegmentStabbingT {
 public:
  using Element = E;
  using Predicate = double;

  explicit SegmentStabbingT(std::vector<E> data) : size_(data.size()) {
    coords_.reserve(2 * data.size());
    for (const E& e : data) {
      coords_.push_back(Span::Lo(e));
      coords_.push_back(Span::Hi(e));
    }
    std::sort(coords_.begin(), coords_.end());
    coords_.erase(std::unique(coords_.begin(), coords_.end()),
                  coords_.end());
    // Elementary slabs: index 2j+1 = the point slab [c_j, c_j]; index 2j
    // = the open gap (c_{j-1}, c_j); index 2m = (c_{m-1}, +inf).
    num_slabs_ = 2 * coords_.size() + 1;
    lists_.assign(4 * num_slabs_, {});  // heap-indexed recursive tree
    for (const E& e : data) {
      if (Span::Lo(e) > Span::Hi(e)) continue;  // empty extent
      const size_t a = 2 * CoordIndex(Span::Lo(e)) + 1;
      const size_t b = 2 * CoordIndex(Span::Hi(e)) + 1;
      Assign(1, 0, num_slabs_, a, b, e);
    }
    for (std::vector<E>& list : lists_) {
      std::sort(list.begin(), list.end(), ByWeightDesc());
    }
  }

  size_t size() const { return size_; }

  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    return std::max(1.0, std::log2(static_cast<double>(n)) / lg_b);
  }

  template <typename Emit>
  void QueryPrioritized(double q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    if (coords_.empty()) return;
    const size_t slab = SlabOf(q);
    size_t node = 1, lo = 0, hi = num_slabs_;
    while (true) {
      AddNodes(stats, 1);
      for (const E& e : lists_[node]) {
        if (!MeetsThreshold(e, tau)) break;  // sorted descending
        if (!emit(e)) return;
      }
      if (hi - lo == 1) break;
      const size_t mid = lo + (hi - lo) / 2;
      if (slab < mid) {
        node = 2 * node;
        hi = mid;
      } else {
        node = 2 * node + 1;
        lo = mid;
      }
    }
  }

 private:
  size_t CoordIndex(double v) const {
    return static_cast<size_t>(
        std::lower_bound(coords_.begin(), coords_.end(), v) -
        coords_.begin());
  }

  // Elementary slab containing q.
  size_t SlabOf(double q) const {
    const size_t j = CoordIndex(q);
    if (j < coords_.size() && coords_[j] == q) return 2 * j + 1;
    return 2 * j;  // open gap below c_j (or above the last coordinate)
  }

  // Assigns e to the canonical nodes covering slab range [a, b].
  void Assign(size_t node, size_t lo, size_t hi, size_t a, size_t b,
              const E& e) {
    if (b < lo || a >= hi) return;
    if (a <= lo && hi - 1 <= b) {
      lists_[node].push_back(e);
      return;
    }
    const size_t mid = lo + (hi - lo) / 2;
    Assign(2 * node, lo, mid, a, b, e);
    Assign(2 * node + 1, mid, hi, a, b, e);
  }

  size_t size_;
  std::vector<double> coords_;  // sorted unique endpoints
  size_t num_slabs_ = 1;
  // Heap-indexed segment tree over slabs; lists_[node] sorted by weight
  // descending.
  std::vector<std::vector<E>> lists_;
};

struct IntervalSpan {
  static double Lo(const Interval& e) { return e.lo; }
  static double Hi(const Interval& e) { return e.hi; }
};

// The Theorem 4 prioritized structure.
using SegmentStabbing = SegmentStabbingT<Interval, IntervalSpan>;

}  // namespace topk::interval

#endif  // TOPK_INTERVAL_SEG_STAB_H_
