// Prioritized interval stabbing in O(n) space: an interval tree whose
// nodes carry priority search trees.
//
// Classic interval tree: each node's center is a median endpoint of the
// elements reaching it; elements containing the center stay at the node,
// the rest split left/right, so every element is stored exactly once and
// the depth is O(log n).
//
// At a node with center c, a stabbing point q < c matches a stored
// element [lo, hi] iff lo <= q (hi >= c > q holds for free) — a
// one-sided condition. Combined with the weight threshold this is a
// three-sided query, answered by a priority search tree over (lo,
// weight); symmetrically (hi, weight) for q > c; q == c matches the
// whole node list. Query: O(log^2 n + t); space O(n).
//
// Compared with SegmentStabbingT (O(n log n) space, O(log n + t) query)
// this trades a log in query time for a log in space — the library
// ships both; the reductions accept either (experiment E7 compares).

#ifndef TOPK_INTERVAL_INTERVAL_TREE_STAB_H_
#define TOPK_INTERVAL_INTERVAL_TREE_STAB_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"
#include "interval/interval.h"
#include "interval/seg_stab.h"
#include "range1d/pst.h"

namespace topk::interval {

template <typename E, typename Span>
class IntervalTreeStabT {
 public:
  using Element = E;
  using Predicate = double;

  explicit IntervalTreeStabT(std::vector<E> data) : size_(data.size()) {
    root_ = Build(std::move(data));
  }

  size_t size() const { return size_; }

  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    const double lg_n = std::log2(static_cast<double>(n));
    return std::max(1.0, lg_n * lg_n / lg_b);
  }

  template <typename Emit>
  void QueryPrioritized(double q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    int32_t idx = root_;
    while (idx != kNil) {
      const Node& node = nodes_[idx];
      AddNodes(stats, 1);
      if (q == node.center) {
        // Everything stored here contains q; emit by descending weight.
        for (const E& e : node.elements) {
          if (!MeetsThreshold(e, tau)) break;
          if (!emit(e)) return;
        }
        // Elements elsewhere cannot contain q only if their extent
        // avoids the center... they can still contain q: keep walking
        // both sides? No: left subtree extents lie strictly left of
        // center, right strictly right, so neither contains q == center.
        return;
      }
      bool keep_going = true;
      if (q < node.center) {
        // Matches iff Lo(e) <= q; PST over (lo, weight).
        node.lo_pst.QueryPrioritized(
            {-std::numeric_limits<double>::infinity(), q}, tau,
            [&](const range1d::Point1D& p) {
              keep_going = emit(node.elements[p.id]);
              return keep_going;
            },
            stats);
        if (!keep_going) return;
        idx = node.left;
      } else {
        node.hi_pst.QueryPrioritized(
            {q, std::numeric_limits<double>::infinity()}, tau,
            [&](const range1d::Point1D& p) {
              keep_going = emit(node.elements[p.id]);
              return keep_going;
            },
            stats);
        if (!keep_going) return;
        idx = node.right;
      }
    }
  }

 private:
  static constexpr int32_t kNil = -1;

  struct Node {
    double center;
    std::vector<E> elements;  // sorted by descending weight
    range1d::PrioritySearchTree lo_pst;  // points (Lo(e), w(e), local idx)
    range1d::PrioritySearchTree hi_pst;  // points (Hi(e), w(e), local idx)
    int32_t left = kNil;
    int32_t right = kNil;

    Node(double c, std::vector<E> elems,
         std::vector<range1d::Point1D> lo_pts,
         std::vector<range1d::Point1D> hi_pts)
        : center(c),
          elements(std::move(elems)),
          lo_pst(std::move(lo_pts)),
          hi_pst(std::move(hi_pts)) {}
  };

  int32_t Build(std::vector<E> data) {
    // Drop empty extents up front.
    std::erase_if(data, [](const E& e) { return Span::Lo(e) > Span::Hi(e); });
    if (data.empty()) return kNil;

    // Median endpoint of the current subset.
    std::vector<double> endpoints;
    endpoints.reserve(2 * data.size());
    for (const E& e : data) {
      endpoints.push_back(Span::Lo(e));
      endpoints.push_back(Span::Hi(e));
    }
    const size_t mid = endpoints.size() / 2;
    std::nth_element(endpoints.begin(), endpoints.begin() + mid,
                     endpoints.end());
    const double center = endpoints[mid];

    std::vector<E> here, left, right;
    for (E& e : data) {
      if (Span::Hi(e) < center) {
        left.push_back(std::move(e));
      } else if (Span::Lo(e) > center) {
        right.push_back(std::move(e));
      } else {
        here.push_back(std::move(e));
      }
    }
    data.clear();
    data.shrink_to_fit();

    std::sort(here.begin(), here.end(), ByWeightDesc());
    std::vector<range1d::Point1D> lo_pts, hi_pts;
    lo_pts.reserve(here.size());
    hi_pts.reserve(here.size());
    for (size_t i = 0; i < here.size(); ++i) {
      lo_pts.push_back({Span::Lo(here[i]), here[i].weight, i});
      hi_pts.push_back({Span::Hi(here[i]), here[i].weight, i});
    }

    const int32_t idx = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back(center, std::move(here), std::move(lo_pts),
                        std::move(hi_pts));
    const int32_t l = left.empty() ? kNil : Build(std::move(left));
    const int32_t r = right.empty() ? kNil : Build(std::move(right));
    nodes_[idx].left = l;
    nodes_[idx].right = r;
    return idx;
  }

  size_t size_;
  std::vector<Node> nodes_;
  int32_t root_ = kNil;
};

using IntervalTreeStab = IntervalTreeStabT<Interval, IntervalSpan>;

}  // namespace topk::interval

#endif  // TOPK_INTERVAL_INTERVAL_TREE_STAB_H_
