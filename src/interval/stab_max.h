// Static stabbing-max: the folklore slab structure of Section 5.2.
//
// The 2n endpoints divide the line into at most 4n + 1 elementary slabs
// (point slabs at coordinates plus the open gaps); each slab stores the
// heaviest element covering it, computed by one sweep with a max-
// multiset. A query is a predecessor search: O(log n) time, O(n) space.
//
// Generic over the element type via `Span` (see seg_stab.h); point
// enclosure's max structure reuses it per x-canonical node.

#ifndef TOPK_INTERVAL_STAB_MAX_H_
#define TOPK_INTERVAL_STAB_MAX_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"
#include "interval/interval.h"
#include "interval/seg_stab.h"

namespace topk::interval {

template <typename E, typename Span>
class SlabMaxT {
 public:
  using Element = E;
  using Predicate = double;

  explicit SlabMaxT(std::vector<E> data) : size_(data.size()) {
    coords_.reserve(2 * data.size());
    for (const E& e : data) {
      coords_.push_back(Span::Lo(e));
      coords_.push_back(Span::Hi(e));
    }
    std::sort(coords_.begin(), coords_.end());
    coords_.erase(std::unique(coords_.begin(), coords_.end()),
                  coords_.end());
    const size_t num_slabs = 2 * coords_.size() + 1;
    slab_best_.assign(num_slabs, -1);
    if (data.empty()) return;

    // An element spans slabs [2*idx(Lo)+1, 2*idx(Hi)+1].
    std::vector<std::vector<const E*>> starts(num_slabs);
    std::vector<std::vector<const E*>> ends(num_slabs);
    for (const E& e : data) {
      if (Span::Lo(e) > Span::Hi(e)) continue;
      starts[2 * CoordIndex(Span::Lo(e)) + 1].push_back(&e);
      ends[2 * CoordIndex(Span::Hi(e)) + 1].push_back(&e);
    }

    std::map<WeightKey, const E*> active;
    std::map<uint64_t, int32_t> memo;  // id of current max -> best_ index
    for (size_t s = 0; s < num_slabs; ++s) {
      for (const E* e : starts[s]) {
        active.emplace(WeightKey{e->weight, e->id}, e);
      }
      if (!active.empty()) {
        const E* top = active.rbegin()->second;
        auto it = memo.find(top->id);
        if (it == memo.end()) {
          it = memo.emplace(top->id, static_cast<int32_t>(best_.size()))
                   .first;
          best_.push_back(*top);
        }
        slab_best_[s] = it->second;
      }
      for (const E* e : ends[s]) {
        active.erase(WeightKey{e->weight, e->id});
      }
    }
  }

  size_t size() const { return size_; }

  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    return std::max(1.0, std::log2(static_cast<double>(n)) / lg_b);
  }

  // The heaviest element covering q, if any.
  std::optional<E> QueryMax(double q, QueryStats* stats = nullptr) const {
    if (coords_.empty()) return std::nullopt;
    const size_t j = CoordIndex(q);
    AddNodes(stats, 1 + static_cast<uint64_t>(std::log2(
                            static_cast<double>(coords_.size() + 1))));
    return MaxAtCoordIndex(j, j < coords_.size() && coords_[j] == q);
  }

  // The sorted endpoint catalog (exposed for fractional cascading).
  const std::vector<double>& coords() const { return coords_; }

  // Max lookup when the caller already knows q's lower-bound index j in
  // coords() and whether coords()[j] == q: O(1), the fractional-
  // cascading fast path.
  std::optional<E> MaxAtCoordIndex(size_t j, bool exact) const {
    if (coords_.empty()) return std::nullopt;
    const size_t slab = exact ? 2 * j + 1 : 2 * j;
    const int32_t idx = slab_best_[slab];
    if (idx < 0) return std::nullopt;
    return best_[idx];
  }

 private:
  // Weight-ordered key for the sweep's active set; id breaks ties.
  struct WeightKey {
    double weight;
    uint64_t id;
    bool operator<(const WeightKey& o) const {
      if (weight != o.weight) return weight < o.weight;
      return id < o.id;
    }
  };

  size_t CoordIndex(double v) const {
    return static_cast<size_t>(
        std::lower_bound(coords_.begin(), coords_.end(), v) -
        coords_.begin());
  }

  size_t size_ = 0;
  std::vector<double> coords_;      // sorted unique endpoints
  std::vector<int32_t> slab_best_;  // per slab: index into best_ or -1
  std::vector<E> best_;             // deduplicated slab maxima
};

// The Theorem 4 max structure.
using SlabStabMax = SlabMaxT<Interval, IntervalSpan>;

}  // namespace topk::interval

#endif  // TOPK_INTERVAL_STAB_MAX_H_
