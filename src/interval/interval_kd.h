// Interval stabbing via the kd-tree over endpoint space.
//
// The classic embedding: a closed interval [lo, hi] becomes the 2D
// point (lo, hi), and "contains q" becomes the quadrant predicate
// lo <= q <= hi. The weight-augmented kd-tree then provides both
// prioritized and max stabbing — a third Theorem 4 substrate, and the
// one that composes with LogarithmicMethod for insert-only dynamism
// (the segment-tree structures are strictly static).

#ifndef TOPK_INTERVAL_INTERVAL_KD_H_
#define TOPK_INTERVAL_INTERVAL_KD_H_

#include "dominance/kdtree.h"
#include "interval/interval.h"

namespace topk::interval {

struct IntervalEndpointGeo {
  static constexpr int kDims = 2;
  static double Coord(const Interval& e, int dim) {
    return dim == 0 ? e.lo : e.hi;
  }
  // The stabbing region of q is the quadrant {lo <= q} x {hi >= q}.
  static bool IntersectsBox(double q, const double* lo, const double* hi) {
    return lo[0] <= q && hi[1] >= q;
  }
  static bool ContainsBox(double q, const double* lo, const double* hi) {
    return hi[0] <= q && lo[1] >= q;
  }
};

using IntervalKdTree = dominance::KdTree<StabProblem, IntervalEndpointGeo>;

}  // namespace topk::interval

#endif  // TOPK_INTERVAL_INTERVAL_KD_H_
