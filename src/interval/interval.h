// Problem definition: interval stabbing (Theorem 4).
//
// D is a set of weighted closed intervals on the real line; a predicate
// is a stabbing point q, matched by every interval containing it. The
// paper's dating/validity-time motivation (Section 1.4) and Theorem 4's
// structures instantiate both reductions here.
//
// Polynomial boundedness: the 2n endpoints split the line into at most
// 2n + 1 slabs and q(D) is constant within a slab, so at most 2n + 1
// distinct outcomes exist — lambda = 2 suffices for all n >= 2.

#ifndef TOPK_INTERVAL_INTERVAL_H_
#define TOPK_INTERVAL_INTERVAL_H_

#include <cstdint>

namespace topk::interval {

struct Interval {
  double lo = 0;
  double hi = 0;
  double weight = 0;
  uint64_t id = 0;
};

struct StabProblem {
  using Element = Interval;
  using Predicate = double;  // the stabbing point
  static constexpr double kLambda = 2.0;

  static bool Matches(double q, const Interval& e) {
    return e.lo <= q && q <= e.hi;
  }
};

}  // namespace topk::interval

#endif  // TOPK_INTERVAL_INTERVAL_H_
