// Machine-independent cost counters.
//
// Every query entry point accepts an optional QueryStats* and charges its
// work to it: structure-node visits, elements emitted by prioritized
// queries, reduction rounds, and fallback activations. Benchmarks report
// these counters alongside wall time so that complexity *shapes* can be
// validated independently of the machine.

#ifndef TOPK_COMMON_STATS_H_
#define TOPK_COMMON_STATS_H_

#include <cstdint>

namespace topk {

struct QueryStats {
  // Nodes (tree nodes, slabs, hull vertices, ...) touched by structure
  // queries. The unit is "one pointer chase", the RAM analogue of an I/O.
  uint64_t nodes_visited = 0;
  // Elements handed to prioritized-query sinks (including ones later
  // discarded by k-selection).
  uint64_t elements_emitted = 0;
  // Prioritized queries issued by a reduction.
  uint64_t prioritized_queries = 0;
  // Max queries issued by a reduction.
  uint64_t max_queries = 0;
  // Rounds executed by the Theorem 2 query protocol.
  uint64_t rounds = 0;
  // Times a Theorem 1 query had to fall back to the verified
  // binary-search reduction because a core-set sample was unlucky.
  uint64_t fallbacks = 0;
  // Full-scan terminations (k = Omega(n) paths and Theorem 2's terminal
  // round).
  uint64_t full_scans = 0;
  // Elements actually returned to callers (the serving layer's answer
  // volume, as opposed to elements_emitted which includes discards).
  uint64_t results_returned = 0;

  // The single authoritative field list. operator+= and every exporter
  // (serve::Metrics JSON, benchmark counter dumps) iterate this, so a
  // new counter only ever needs to be added in two places: the member
  // above and one line here. The static_assert below makes forgetting
  // this list a compile error rather than a silently dropped counter.
  template <typename Fn>
  static constexpr void ForEachField(Fn&& fn) {
    fn("nodes_visited", &QueryStats::nodes_visited);
    fn("elements_emitted", &QueryStats::elements_emitted);
    fn("prioritized_queries", &QueryStats::prioritized_queries);
    fn("max_queries", &QueryStats::max_queries);
    fn("rounds", &QueryStats::rounds);
    fn("fallbacks", &QueryStats::fallbacks);
    fn("full_scans", &QueryStats::full_scans);
    fn("results_returned", &QueryStats::results_returned);
  }

  // The serving layer's scalar cost measure: one unit per pointer chase
  // or per element handled. Request cost budgets (serve::Request) are
  // denominated in these units, so a budget bounds the structure work a
  // query may consume regardless of which counters it lands in.
  uint64_t work() const { return nodes_visited + elements_emitted; }

  void Reset() { *this = QueryStats(); }

  QueryStats& operator+=(const QueryStats& o) {
    ForEachField([this, &o](const char*, auto member) {
      this->*member += o.*member;
    });
    return *this;
  }
};

// Adding a QueryStats counter? Extend ForEachField above and bump this
// count — the assert fires on any field the list does not cover.
static_assert(sizeof(QueryStats) == 8 * sizeof(uint64_t),
              "QueryStats field added: update ForEachField and this count");

// Increment helpers tolerating a null stats pointer (the convention for
// callers that do not need accounting).
inline void AddNodes(QueryStats* s, uint64_t n) {
  if (s != nullptr) s->nodes_visited += n;
}
inline void AddEmitted(QueryStats* s, uint64_t n) {
  if (s != nullptr) s->elements_emitted += n;
}

}  // namespace topk

#endif  // TOPK_COMMON_STATS_H_
