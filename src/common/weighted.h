// Weight ordering shared by every structure in the library.
//
// The paper assumes all weights are distinct (the standard top-k
// assumption that removes tie-breaking ambiguity). We *realize* the
// assumption instead of requiring it: every element carries a 64-bit id,
// and all comparisons are on the lexicographic key (weight, id), which is
// a strict total order whenever ids are unique.
//
// A problem's Element type must expose two public fields:
//   double   weight;
//   uint64_t id;

#ifndef TOPK_COMMON_WEIGHTED_H_
#define TOPK_COMMON_WEIGHTED_H_

#include <cstdint>

namespace topk {

// The strict total order on weights. a "heavier than" b.
template <typename E>
inline bool HeavierThan(const E& a, const E& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  return a.id > b.id;
}

// Comparator object for sorting in descending weight order (heaviest
// first) — the order every top-k result is returned in.
struct ByWeightDesc {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    return HeavierThan(a, b);
  }
};

// True when w(e) >= tau. A prioritized query's threshold tau is a plain
// weight; elements tied with tau on weight are included regardless of id
// (the paper's distinct-weight world has no such ties; including them is
// the conservative choice and never drops a qualifying element).
template <typename E>
inline bool MeetsThreshold(const E& e, double tau) {
  return e.weight >= tau;
}

}  // namespace topk

#endif  // TOPK_COMMON_WEIGHTED_H_
