// Fractional cascading (Chazelle & Guibas [14]) over a binary tree of
// sorted catalogs.
//
// The paper invokes fractional cascading twice (Sections 5.2 and 5.4)
// to turn "a predecessor search at every node of a root-to-leaf path"
// from O(log^2 n) into O(log n): after one binary search in the root's
// *augmented* catalog, each step down the path locates the query in the
// child's catalog in O(1) via precomputed bridges.
//
// Construction (bottom-up): the augmented catalog A_v merges the native
// catalog C_v with every second element of each child's augmented
// catalog, so sum |A_v| <= 2 * sum |C_v|. Each augmented position p
// stores (i) the native lower-bound index at p and (ii) per child, a
// bridge to the first child-augmented element >= A_v[p]; a query
// descends by following the bridge and walking back at most a constant
// number of slots.

#ifndef TOPK_COMMON_CASCADE_H_
#define TOPK_COMMON_CASCADE_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"

namespace topk {

class FractionalCascading {
 public:
  struct Cursor {
    int32_t node = -1;
    // Index in A_node of the first element >= y (the augmented
    // lower-bound position).
    uint32_t aug_pos = 0;
  };

  FractionalCascading() = default;

  // catalogs[v]: the native sorted list of node v; children[v]: child
  // node ids or -1. Nodes unreachable from root are ignored.
  FractionalCascading(const std::vector<std::vector<double>>& catalogs,
                      const std::vector<std::array<int32_t, 2>>& children,
                      int32_t root)
      : children_(children), root_(root) {
    TOPK_CHECK(catalogs.size() == children.size());
    nodes_.resize(catalogs.size());
    if (root_ >= 0) BuildAt(root_, catalogs);
  }

  int32_t root() const { return root_; }

  // Positions the cursor at the root for query value y.
  Cursor Start(double y) const {
    Cursor c;
    c.node = root_;
    if (root_ < 0) return c;
    const std::vector<double>& aug = nodes_[root_].aug;
    c.aug_pos = static_cast<uint32_t>(
        std::lower_bound(aug.begin(), aug.end(), y) - aug.begin());
    return c;
  }

  // Moves the cursor to the given child (0 = left, 1 = right) in O(1)
  // amortized; `y` is the same query value passed to Start.
  Cursor Descend(const Cursor& cur, int child, double y) const {
    TOPK_DCHECK(cur.node >= 0);
    const Node& node = nodes_[cur.node];
    Cursor next;
    next.node = children_[cur.node][child];
    if (next.node < 0) return next;
    const std::vector<double>& child_aug = nodes_[next.node].aug;
    uint32_t q = node.bridge[child][cur.aug_pos];
    // The bridge points at the first child element >= A_v[aug_pos]
    // (>= y); walk back over child elements that are also >= y.
    while (q > 0 && child_aug[q - 1] >= y) --q;
    next.aug_pos = q;
    return next;
  }

  // Index in node's *native* catalog of the first element >= y.
  size_t NativeLowerBound(const Cursor& cur) const {
    TOPK_DCHECK(cur.node >= 0);
    return nodes_[cur.node].native_lb[cur.aug_pos];
  }

  // Total augmented elements (space diagnostics; <= 2x native).
  size_t augmented_size() const {
    size_t total = 0;
    for (const Node& node : nodes_) total += node.aug.size();
    return total;
  }

 private:
  struct Node {
    std::vector<double> aug;  // augmented catalog, sorted
    // native_lb[p] = index in the native catalog of the first native
    // element >= aug[p]; size |aug| + 1 (sentinel = |native|).
    std::vector<uint32_t> native_lb;
    // bridge[c][p] = index in child c's augmented catalog of the first
    // element >= aug[p]; size |aug| + 1 (sentinel).
    std::array<std::vector<uint32_t>, 2> bridge;
  };

  void BuildAt(int32_t v, const std::vector<std::vector<double>>& catalogs) {
    for (int c = 0; c < 2; ++c) {
      if (children_[v][c] >= 0) BuildAt(children_[v][c], catalogs);
    }
    Node& node = nodes_[v];
    const std::vector<double>& native = catalogs[v];

    // Sampled child streams: every second element, starting at index 1
    // so the first element of each pair is representable by its sample.
    std::vector<double> merged = native;
    for (int c = 0; c < 2; ++c) {
      const int32_t ch = children_[v][c];
      if (ch < 0) continue;
      const std::vector<double>& ca = nodes_[ch].aug;
      for (size_t i = 1; i < ca.size(); i += 2) merged.push_back(ca[i]);
    }
    std::sort(merged.begin(), merged.end());
    node.aug = std::move(merged);

    // Native lower-bound per augmented position.
    node.native_lb.resize(node.aug.size() + 1);
    node.native_lb[node.aug.size()] = static_cast<uint32_t>(native.size());
    for (size_t p = node.aug.size(); p-- > 0;) {
      node.native_lb[p] = static_cast<uint32_t>(
          std::lower_bound(native.begin(), native.end(), node.aug[p]) -
          native.begin());
    }

    // Bridges per child.
    for (int c = 0; c < 2; ++c) {
      std::vector<uint32_t>& bridge = node.bridge[c];
      bridge.assign(node.aug.size() + 1, 0);
      const int32_t ch = children_[v][c];
      const std::vector<double>* ca =
          ch >= 0 ? &nodes_[ch].aug : nullptr;
      const uint32_t child_size =
          ca != nullptr ? static_cast<uint32_t>(ca->size()) : 0;
      bridge[node.aug.size()] = child_size;
      if (ca == nullptr) continue;
      for (size_t p = node.aug.size(); p-- > 0;) {
        bridge[p] = static_cast<uint32_t>(
            std::lower_bound(ca->begin(), ca->end(), node.aug[p]) -
            ca->begin());
      }
    }
  }

  std::vector<Node> nodes_;
  std::vector<std::array<int32_t, 2>> children_;
  int32_t root_ = -1;
};

}  // namespace topk

#endif  // TOPK_COMMON_CASCADE_H_
