// Reusable scratch memory for the steady-state query path.
//
// The reductions are I/O-optimal but, naively implemented, every query
// heap-allocates fresh candidate pools (MonitoredQuery collections,
// k-selection buffers, BudgetedTopK stage results). A Scratch owns
// growable, NEVER-shrinking pools of element vectors; a query borrows a
// pool via Borrow<E>(), fills it, and the ScratchVec RAII handle
// returns the buffer — capacity intact — when it goes out of scope.
// After a warm-up query has grown every pool to its high-water mark,
// subsequent queries over the same structure perform zero heap
// allocations (asserted by tests/alloc_regression_test.cc through a
// warm serve::QueryEngine for all four reductions).
//
// Ownership contract (see DESIGN.md "scratch memory contract"):
//   * a Scratch is owned by exactly one thread at a time — one per
//     QueryEngine worker, or one on the stack of a compatibility
//     Query() call. It is NOT thread-safe; never share one across
//     concurrent queries.
//   * every ScratchVec must be destroyed (or moved into one that is)
//     before its Scratch: the handle holds a pointer back to the owner.
//     ~Scratch aborts if handles are still outstanding, turning a
//     would-be dangling pointer into a loud failure.
//   * pools never shrink: the arena's capacity is the high-water mark
//     of any query served so far. Callers that must bound memory build
//     a fresh Scratch (the compatibility overloads do exactly that).
//
// Under -DTOPK_AUDIT the per-pool borrow ledger is additionally
// checked on every return (a Return without a matching Borrow — the
// double-return of a stolen buffer — aborts), mirroring the
// audit::Checked* query-contract wrappers.

#ifndef TOPK_COMMON_SCRATCH_H_
#define TOPK_COMMON_SCRATCH_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"

namespace topk {

class Scratch;

namespace scratch_internal {

// Dense per-element-type indices, assigned on first use program-wide.
// A Scratch keeps its pools in a flat vector indexed by these, so
// Borrow<E>() is one array lookup — no map, no RTTI, no allocation
// once the slot exists.
inline size_t NextTypeIndex() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

template <typename E>
size_t TypeIndex() {
  static const size_t index = NextTypeIndex();
  return index;
}

}  // namespace scratch_internal

// RAII handle on a pool borrowed from a Scratch: a thin wrapper around
// a std::vector<E> whose buffer is returned to the owner (cleared,
// capacity kept) on destruction. Move-only; a moved-from handle owns
// nothing and returns nothing.
template <typename E>
class ScratchVec {
 public:
  ScratchVec(ScratchVec&& o) noexcept
      : owner_(std::exchange(o.owner_, nullptr)), vec_(std::move(o.vec_)) {}
  ScratchVec& operator=(ScratchVec&& o) noexcept {
    if (this != &o) {
      Release();
      owner_ = std::exchange(o.owner_, nullptr);
      vec_ = std::move(o.vec_);
    }
    return *this;
  }
  ScratchVec(const ScratchVec&) = delete;
  ScratchVec& operator=(const ScratchVec&) = delete;
  ~ScratchVec() { Release(); }

  // The underlying vector, for callers that need the real type
  // (std::sort, SelectTopK, assign into a result slot).
  std::vector<E>& vec() { return vec_; }
  const std::vector<E>& vec() const { return vec_; }

  // Vector-like conveniences for the common hot-path operations.
  size_t size() const { return vec_.size(); }
  bool empty() const { return vec_.empty(); }
  void clear() { vec_.clear(); }
  void reserve(size_t n) { vec_.reserve(n); }
  void resize(size_t n) { vec_.resize(n); }
  void push_back(const E& e) { vec_.push_back(e); }
  E& operator[](size_t i) { return vec_[i]; }
  const E& operator[](size_t i) const { return vec_[i]; }
  typename std::vector<E>::iterator begin() { return vec_.begin(); }
  typename std::vector<E>::iterator end() { return vec_.end(); }
  typename std::vector<E>::const_iterator begin() const {
    return vec_.begin();
  }
  typename std::vector<E>::const_iterator end() const { return vec_.end(); }

 private:
  friend class Scratch;
  ScratchVec(Scratch* owner, std::vector<E>&& vec)
      : owner_(owner), vec_(std::move(vec)) {}

  inline void Release();

  Scratch* owner_;  // null after move-out
  std::vector<E> vec_;
};

class Scratch {
 public:
  Scratch() = default;
  // Handles hold a pointer back to their owner: moving a Scratch would
  // strand them, so it is pinned.
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  ~Scratch() {
    // A live handle at this point would return its buffer into freed
    // memory; abort before the dangle instead (leak check).
    TOPK_CHECK_EQ(outstanding_, size_t{0});
  }

  // Borrows a pool of E. The buffer is empty but keeps the capacity it
  // grew to on earlier borrows; allocation happens only the first time
  // a given high-water mark is reached.
  template <typename E>
  ScratchVec<E> Borrow() {
    Pool<E>* pool = PoolFor<E>();
    ++outstanding_;
#ifdef TOPK_AUDIT
    ++pool->borrowed;
#endif
    if (pool->free.empty()) return ScratchVec<E>(this, std::vector<E>());
    std::vector<E> v = std::move(pool->free.back());
    pool->free.pop_back();
    return ScratchVec<E>(this, std::move(v));
  }

  // Handles currently borrowed and not yet returned (0 between queries).
  size_t outstanding() const { return outstanding_; }
  // Distinct element-type pools this arena has served (diagnostics).
  size_t num_pools() const {
    size_t n = 0;
    for (const std::unique_ptr<PoolBase>& p : pools_) n += p != nullptr;
    return n;
  }
  // Buffers parked in the free list of E's pool (diagnostics/tests).
  template <typename E>
  size_t free_count() const {
    const size_t index = scratch_internal::TypeIndex<E>();
    if (index >= pools_.size() || pools_[index] == nullptr) return 0;
    return static_cast<const Pool<E>*>(pools_[index].get())->free.size();
  }

 private:
  template <typename E>
  friend class ScratchVec;

  struct PoolBase {
    virtual ~PoolBase() = default;
#ifdef TOPK_AUDIT
    size_t borrowed = 0;  // audit ledger: borrows minus returns
#endif
  };
  template <typename E>
  struct Pool : PoolBase {
    std::vector<std::vector<E>> free;
  };

  template <typename E>
  Pool<E>* PoolFor() {
    const size_t index = scratch_internal::TypeIndex<E>();
    if (index >= pools_.size()) pools_.resize(index + 1);
    if (pools_[index] == nullptr) {
      pools_[index] = std::make_unique<Pool<E>>();
    }
    return static_cast<Pool<E>*>(pools_[index].get());
  }

  template <typename E>
  void Return(std::vector<E>&& v) {
    // The pool slot must exist: Return only ever follows a Borrow.
    Pool<E>* pool =
        static_cast<Pool<E>*>(pools_[scratch_internal::TypeIndex<E>()].get());
#ifdef TOPK_AUDIT
    // Double-return check: more returns than borrows means a buffer was
    // handed back twice (e.g. through a use-after-move of the handle).
    TOPK_CHECK(pool->borrowed > 0);
    --pool->borrowed;
#endif
    TOPK_CHECK(outstanding_ > 0);
    --outstanding_;
    v.clear();  // destroy elements, keep capacity
    pool->free.push_back(std::move(v));
  }

  std::vector<std::unique_ptr<PoolBase>> pools_;
  size_t outstanding_ = 0;
};

template <typename E>
void ScratchVec<E>::Release() {
  if (owner_ != nullptr) {
    owner_->Return<E>(std::move(vec_));
    owner_ = nullptr;
  }
}

}  // namespace topk

#endif  // TOPK_COMMON_SCRATCH_H_
