// Deterministic Zipf-distributed rank sampler for skewed workloads.
//
// Serving traffic is not uniform: a few hot queries dominate (the
// whole reason the federation layer carries a result cache). This
// sampler draws ranks r in [0, n) with P(r) proportional to
// 1 / (r+1)^s — rank 0 is the hottest — via a precomputed CDF and a
// binary search per draw. s = 0 degenerates to uniform; s around 1 is
// the classic web-traffic shape. All randomness flows through
// topk::Rng (explicit seeds), so benchmark workloads built on this are
// reproducible bit-for-bit.

#ifndef TOPK_COMMON_ZIPF_H_
#define TOPK_COMMON_ZIPF_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace topk {

class ZipfDistribution {
 public:
  // n ranks, skew s >= 0. Construction is O(n); draws are O(log n).
  ZipfDistribution(size_t n, double s) : cdf_(n) {
    TOPK_CHECK(n >= 1);
    TOPK_CHECK(s >= 0.0);
    double acc = 0.0;
    for (size_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = acc;
    }
    const double total = cdf_.back();
    for (double& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against rounding shaving the tail
  }

  size_t n() const { return cdf_.size(); }

  // Next rank in [0, n); rank 0 is the most frequent.
  size_t Next(Rng* rng) const {
    const double u = rng->NextDouble();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const size_t r = static_cast<size_t>(it - cdf_.begin());
    return r < cdf_.size() ? r : cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r); cdf_[n-1] = 1
};

}  // namespace topk

#endif  // TOPK_COMMON_ZIPF_H_
