// k-selection utilities.
//
// The paper's reductions repeatedly finish with "k-selection": given an
// unordered candidate pool that is guaranteed to contain the k heaviest
// qualifying elements, extract them in O(|pool|) time (O(|pool|/B) I/Os in
// EM). We additionally sort the k survivors by descending weight — a
// k log k afterthought that makes the public API pleasant; callers that
// need the paper-exact unordered semantics use SelectTopKUnordered.

#ifndef TOPK_COMMON_KSELECT_H_
#define TOPK_COMMON_KSELECT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/weighted.h"

namespace topk {

// Truncates `pool` to its min(k, |pool|) heaviest elements, unordered.
// Linear time (std::nth_element).
template <typename E>
void SelectTopKUnordered(std::vector<E>* pool, size_t k) {
  if (pool->size() > k) {
    std::nth_element(pool->begin(), pool->begin() + k, pool->end(),
                     ByWeightDesc());
    pool->resize(k);
  }
}

// Truncates `pool` to its min(k, |pool|) heaviest elements, sorted by
// descending weight.
template <typename E>
void SelectTopK(std::vector<E>* pool, size_t k) {
  SelectTopKUnordered(pool, k);
  std::sort(pool->begin(), pool->end(), ByWeightDesc());
}

// Convenience value-returning form.
template <typename E>
std::vector<E> TopKOf(std::vector<E> pool, size_t k) {
  SelectTopK(&pool, k);
  return pool;
}

}  // namespace topk

#endif  // TOPK_COMMON_KSELECT_H_
