// k-selection utilities.
//
// The paper's reductions repeatedly finish with "k-selection": given an
// unordered candidate pool that is guaranteed to contain the k heaviest
// qualifying elements, extract them in O(|pool|) time (O(|pool|/B) I/Os in
// EM). We additionally sort the k survivors by descending weight — a
// k log k afterthought that makes the public API pleasant; callers that
// need the paper-exact unordered semantics use SelectTopKUnordered.
//
// SelectTopK picks between two strategies:
//   * heap-based std::partial_sort — O(|pool| log k), a single pass
//     whose k-element heap stays cache-hot;
//   * std::nth_element + std::sort of the survivors —
//     O(|pool| + k log k) expected.
// The boundary is the E24-measured one (bench/bench_perf.cc sweeps it;
// see EXPERIMENTS.md E24 and UseHeapSelect below). The textbook
// k * log2(|pool|) < |pool| rule mispredicts BOTH regimes on real
// hardware and is deliberately not used. SelectTopKUnordered stays
// nth_element-only — the paper-exact O(|pool|) primitive.

#ifndef TOPK_COMMON_KSELECT_H_
#define TOPK_COMMON_KSELECT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/scratch.h"
#include "common/weighted.h"

namespace topk {

// Truncates `pool` to its min(k, |pool|) heaviest elements, unordered.
// Linear time (std::nth_element) — the paper-exact selection primitive.
template <typename E>
void SelectTopKUnordered(std::vector<E>* pool, size_t k) {
  if (pool->size() > k) {
    std::nth_element(pool->begin(), pool->begin() + k, pool->end(),
                     ByWeightDesc());
    pool->resize(k);
  }
}

namespace kselect_internal {

// E24-measured strategy boundary (bench/bench_perf.cc; random pools of
// 24-byte elements). Two regimes:
//   * cache-resident pools (below ~8K elements): one nth_element
//     partition pass is so cheap that the heap's pop chain loses for
//     all but tiny k — partial_sort wins only up to k ~ n/512, and by
//     sub-microsecond margins;
//   * larger-than-cache pools: nth_element's partition passes go to
//     memory and its per-element cost jumps ~6x, while partial_sort's
//     single scan (the k-element heap stays cache-hot) does not —
//     partial_sort wins by 3-5x at small k and stays ahead until
//     k ~ 3*sqrt(n), i.e. while k^2 < ~10n.
inline bool UseHeapSelect(size_t k, size_t n) {
  constexpr size_t kCacheResidentPool = 8192;  // elements, ~L2 boundary
  if (n < kCacheResidentPool) return k * 512 <= n;
  return static_cast<double>(k) * static_cast<double>(k) <
         10.0 * static_cast<double>(n);
}

}  // namespace kselect_internal

// Truncates `pool` to its min(k, |pool|) heaviest elements, sorted by
// descending weight.
template <typename E>
void SelectTopK(std::vector<E>* pool, size_t k) {
  const size_t n = pool->size();
  if (n <= k) {
    std::sort(pool->begin(), pool->end(), ByWeightDesc());
    return;
  }
  if (kselect_internal::UseHeapSelect(k, n)) {
    std::partial_sort(pool->begin(), pool->begin() + k, pool->end(),
                      ByWeightDesc());
    pool->resize(k);
    return;
  }
  SelectTopKUnordered(pool, k);
  std::sort(pool->begin(), pool->end(), ByWeightDesc());
}

// In-place forms on a borrowed scratch pool (the zero-allocation query
// path threads ScratchVec candidate pools through here).
template <typename E>
void SelectTopKUnordered(ScratchVec<E>* pool, size_t k) {
  SelectTopKUnordered(&pool->vec(), k);
}

template <typename E>
void SelectTopK(ScratchVec<E>* pool, size_t k) {
  SelectTopK(&pool->vec(), k);
}

// Convenience value-returning form.
template <typename E>
std::vector<E> TopKOf(std::vector<E> pool, size_t k) {
  SelectTopK(&pool, k);
  return pool;
}

}  // namespace topk

#endif  // TOPK_COMMON_KSELECT_H_
