// Measured printf-append: formatted output that can never truncate.
//
// serve::ToJson (and the trace exporter) used to snprintf into a fixed
// stack buffer, which silently truncated once counters approached their
// 64-bit range — emitting malformed JSON that downstream tooling then
// had to reject. AppendF formats into a stack buffer for the common
// short case and, when vsnprintf reports the output did not fit,
// retries into the destination string's own storage sized from the
// measured length. Output length is therefore unbounded by any buffer
// the caller chose.

#ifndef TOPK_COMMON_FORMAT_H_
#define TOPK_COMMON_FORMAT_H_

#include <cstdarg>
#include <cstddef>
#include <cstdio>
#include <string>

#include "common/check.h"

namespace topk {

// Appends printf(fmt, ...) to *out; returns the number of characters
// appended. An encoding error from vsnprintf is programmer error and
// aborts.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
inline size_t
AppendF(std::string* out, const char* fmt, ...) {
  char buf[192];
  va_list args;
  va_start(args, fmt);
  va_list retry;
  va_copy(retry, args);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  TOPK_CHECK(n >= 0);
  const size_t len = static_cast<size_t>(n);
  if (len < sizeof(buf)) {
    out->append(buf, len);
  } else {
    // Did not fit: vsnprintf measured the true length above; write the
    // full output straight into the string (+1 for the terminator the
    // final resize drops again).
    const size_t old = out->size();
    out->resize(old + len + 1);
    const int m = std::vsnprintf(out->data() + old, len + 1, fmt, retry);
    TOPK_CHECK_EQ(m, n);
    out->resize(old + len);
  }
  va_end(retry);
  return len;
}

}  // namespace topk

#endif  // TOPK_COMMON_FORMAT_H_
