// Deterministic, fast pseudo-random number generation.
//
// All randomized algorithms in the library (rank sampling, core-set
// construction, treap priorities) draw from an explicitly seeded Rng so
// that builds and tests are reproducible. The generator is xoshiro256**,
// seeded through SplitMix64.

#ifndef TOPK_COMMON_RANDOM_H_
#define TOPK_COMMON_RANDOM_H_

#include <cstdint>

namespace topk {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
// implementation), seeded via SplitMix64 as the authors recommend.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&x);
  }

  // Uniform over all 64-bit values.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound); bound must be positive.
  uint64_t Below(uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is negligible (< 2^-64
    // relative) for the bounds used in this library.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1). The top 53 bits fit a double exactly.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace topk

#endif  // TOPK_COMMON_RANDOM_H_
