// A non-owning, non-allocating callable reference (the C++26
// std::function_ref shape, reduced to what the serving layer needs).
//
// std::function type-erases by *owning* a copy of the callable, which
// may heap-allocate (capture lists beyond the SBO) and always costs an
// indirect call through a vtable-ish dispatcher. FunctionRef erases by
// *referencing*: two words (object pointer + trampoline pointer), no
// allocation ever, one indirect call. The referenced callable must
// outlive every invocation — which is exactly the ThreadPool::RunOnAll
// contract, where the job lives on the caller's stack for the duration
// of the (blocking) parallel region.
//
// Accepts lambdas (with or without captures), function objects, and
// plain function pointers; see tests/function_ref_test.cc.

#ifndef TOPK_COMMON_FUNCTION_REF_H_
#define TOPK_COMMON_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace topk {

template <typename Signature>
class FunctionRef;  // undefined; only the R(Args...) partial below exists

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  // From any callable lvalue (or materialized temporary — which must
  // then outlive only the current full-expression's invocations).
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, F&, Args...>)
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          // A void signature may wrap a value-returning callee
          // (is_invocable_r allows the discard); branch so the
          // trampoline doesn't return the discarded value.
          if constexpr (std::is_void_v<R>) {
            (*static_cast<std::remove_reference_t<F>*>(obj))(
                std::forward<Args>(args)...);
          } else {
            return (*static_cast<std::remove_reference_t<F>*>(obj))(
                std::forward<Args>(args)...);
          }
        }) {}

  // From a plain function (pointer): erased directly, no object to
  // outlive.
  FunctionRef(R (*fn)(Args...)) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(reinterpret_cast<void*>(fn)),
        call_([](void* obj, Args... args) -> R {
          return reinterpret_cast<R (*)(Args...)>(obj)(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace topk

#endif  // TOPK_COMMON_FUNCTION_REF_H_
