// CRC-32 (IEEE 802.3 polynomial, reflected) for the durability layer.
//
// Every durable artifact carries a checksum computed here: WAL records
// (per-record CRC so a torn tail is detected at the first bad record),
// checkpoint manifests (a torn manifest slot is skipped in favor of the
// other slot), and checkpoint payload/meta blobs (a manifest is trusted
// only if the pages it points at hash to what it recorded). The table
// is built constexpr, so the checksum is a pure function with no
// startup cost and no global state.

#ifndef TOPK_COMMON_CRC32_H_
#define TOPK_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace topk {

namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

// One-shot: Crc32(data, len). Incremental: chain the return value
// through the `state` parameter (pass the previous return verbatim;
// the pre/post conditioning is handled internally).
inline uint32_t Crc32(const uint8_t* data, size_t len, uint32_t state = 0) {
  uint32_t c = state ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = internal::kCrc32Table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace topk

#endif  // TOPK_COMMON_CRC32_H_
