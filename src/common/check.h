// Lightweight assertion macros.
//
// The library does not use exceptions (structures are total functions of
// their inputs); violated preconditions are programming errors and abort
// with a message. TOPK_CHECK is always on; TOPK_DCHECK compiles away in
// release builds.

#ifndef TOPK_COMMON_CHECK_H_
#define TOPK_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define TOPK_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "TOPK_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define TOPK_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define TOPK_DCHECK(cond) TOPK_CHECK(cond)
#endif

#endif  // TOPK_COMMON_CHECK_H_
