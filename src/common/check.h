// Lightweight assertion macros.
//
// The library does not use exceptions (structures are total functions of
// their inputs); violated preconditions are programming errors and abort
// with a message. TOPK_CHECK is always on; TOPK_DCHECK compiles away in
// release builds but still type-checks its condition, so NDEBUG neither
// hides unused-variable warnings nor lets the expression bit-rot.
//
// The comparison forms (TOPK_CHECK_EQ/LE/LT) print both operand values
// on abort — prefer them over TOPK_CHECK(a == b) anywhere the values
// help diagnose the failure (sizes, counters, ranks).

#ifndef TOPK_COMMON_CHECK_H_
#define TOPK_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>

#define TOPK_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "TOPK_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

namespace topk::internal {

// Out-of-line cold path for the comparison macros: stream both operands
// (anything with operator<<) into the abort message.
template <typename A, typename B>
[[noreturn]] inline void CheckOpAbort(const char* expr, const A& a,
                                      const B& b, const char* file,
                                      int line) {
  std::ostringstream values;
  values << a << " vs " << b;
  std::fprintf(stderr, "TOPK_CHECK failed: %s (%s) at %s:%d\n", expr,
               values.str().c_str(), file, line);
  std::abort();
}

}  // namespace topk::internal

// Operands are evaluated exactly once.
#define TOPK_CHECK_OP_(a, op, b)                                          \
  do {                                                                    \
    auto&& topk_check_a_ = (a);                                           \
    auto&& topk_check_b_ = (b);                                           \
    if (!(topk_check_a_ op topk_check_b_)) {                              \
      ::topk::internal::CheckOpAbort(#a " " #op " " #b, topk_check_a_,    \
                                     topk_check_b_, __FILE__, __LINE__);  \
    }                                                                     \
  } while (0)

#define TOPK_CHECK_EQ(a, b) TOPK_CHECK_OP_(a, ==, b)
#define TOPK_CHECK_LE(a, b) TOPK_CHECK_OP_(a, <=, b)
#define TOPK_CHECK_LT(a, b) TOPK_CHECK_OP_(a, <, b)

#ifdef NDEBUG
// The condition stays inside an unevaluated operand: never executed, but
// still parsed and type-checked, so symbols it names must keep existing.
#define TOPK_DCHECK(cond)        \
  do {                           \
    (void)sizeof(!(cond));       \
  } while (0)
#else
#define TOPK_DCHECK(cond) TOPK_CHECK(cond)
#endif

#endif  // TOPK_COMMON_CHECK_H_
