// Federated scatter-gather top-k across S shard engines, with
// threshold-algorithm-style early termination and a hot-query cache.
//
// A Coordinator fronts S serve::QueryEngines, one per hash shard of the
// dataset (federate/shard_map.h). A query fans out to every healthy
// shard in parallel (one parked worker per shard) and the per-shard
// answers are merged under the library-wide (weight, id) strict total
// order, so the federated answer is bitwise-identical to a single
// engine over the union — never merely "close".
//
// Early termination (the threshold-algorithm idea specialized to
// heaviest-first prefixes): a shard's answer to "top a_s" is its a_s
// heaviest matches, so every element it has NOT returned is strictly
// lighter than the lightest element it has (prefix.back()). The
// coordinator asks each shard for a small prefix first (k/S plus
// cushion), doubles a shard's ask each round, and retires a shard as
// soon as (a) it returned fewer than asked (exhausted), (b) it was
// asked the full k, or (c) the merged candidate pool already holds k
// elements and the shard's bound cannot beat the current global k-th —
// the k-th only gets heavier as the pool grows, so a retired shard
// stays retired. Stats::elements_pulled (the per-shard final prefix
// depths — TA's sorted-access count) is what bench_federate (E28)
// proves strictly below the exhaustive S*k gather.
//
// Epoch consistency: multi-round pulls are only sound if every round
// saw the same per-shard snapshot. EpochManager::current_seq() is
// writer-side-only, so the coordinator registers its OWN reader slot
// per epoch-mode shard and probes sequence numbers through pins
// (lock-free, allocation-free). A query captures the seq vector before
// fan-out and after the last round; on mismatch (a publish landed
// mid-query) it retries, and after kMaxUnstableRetries falls back to a
// single-round exhaustive gather — one batch per shard pins one epoch,
// so each shard's contribution is complete for the snapshot it pinned
// and no cross-round consistency is needed. last_epoch_seqs() exposes
// the per-shard snapshot versions each answer was computed against.
//
// Result cache: a bounded direct-mapped array keyed by the predicate's
// value bytes plus k (predicates are trivially copyable PODs; padding
// differences can only cause misses, never wrong answers). Each entry
// records the per-shard epoch seq vector it was computed under; a hit
// is served only if every shard's current seq still matches (a shard
// publish invalidates implicitly by bumping its seq) and every shard is
// healthy. The hit path copies into the caller's recycled buffer and
// performs no allocation in steady state. Only kOk, all-shards-healthy
// answers are cached.
//
// Partial failure: SetShardHealthy(s, false) removes a shard from the
// fan-out; the answer is EXACT over the surviving shards and flagged
// kDegraded (PR 3 semantics lifted shard-wide). A healthy shard that
// degrades itself (budget/deadline) returns a correct heaviest-first
// prefix; the merged answer is truncated at the heaviest such shard
// bound — everything kept provably beats anything any degraded shard
// still holds, so the output is a correct prefix of the true global
// top-k. Per-status tallies land in metrics() for serve::ToJson.
//
// Thread-safety: a Coordinator is externally synchronized — one query
// at a time, like QueryEngine::QueryBatchInto. The shard engines and
// epoch managers must outlive it; each engine is driven only by its
// dedicated fan-out worker.

#ifndef TOPK_FEDERATE_COORDINATOR_H_
#define TOPK_FEDERATE_COORDINATOR_H_

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/kselect.h"
#include "common/scratch.h"
#include "common/weighted.h"
#include "serve/engine.h"
#include "serve/epoch.h"
#include "serve/metrics.h"
#include "serve/result.h"
#include "serve/thread_pool.h"

namespace topk::federate {

template <serve::ShareableTopKStructure Structure>
class Coordinator {
 public:
  using Engine = serve::QueryEngine<Structure>;
  using Element = typename Structure::Element;
  using Predicate = typename Structure::Predicate;
  using Request = typename Engine::Request;
  using Result = typename Engine::Result;

  static_assert(std::is_trivially_copyable_v<Predicate>,
                "the federation result cache keys predicates by value "
                "bytes (memcmp); predicates must stay trivially "
                "copyable PODs");

  // One shard: an engine (static or epoch mode) plus, when the shard
  // serves a mutating chain, the epoch manager the engine reads from —
  // the coordinator probes it for cache invalidation and query
  // stability. epochs == nullptr means a static shard (seq reported 0).
  struct Shard {
    Engine* engine = nullptr;
    serve::EpochManager<Structure>* epochs = nullptr;
  };

  struct Options {
    // First-round ask per shard; 0 = auto (k/S plus a cushion of
    // 3*sqrt(k/S)+4, so a near-uniform weight spread usually finishes
    // in one round). Doubled per round, capped at k.
    size_t initial_k = 0;
    // Skip early termination: ask every shard for the full k in one
    // round. Always correct; exists as the comparison baseline for the
    // early-termination claim and as the unstable-query fallback.
    bool exhaustive = false;
    // Result cache entries (direct-mapped); 0 disables the cache.
    size_t cache_entries = 0;
    // Per-shard-fetch degradation knobs, passed through to each shard
    // request (serve::Request semantics; deadline is per fetch,
    // relative to that batch's start). 0 disables either.
    uint64_t cost_budget = 0;
    uint64_t deadline_ns = 0;
  };

  // Aggregate counters across every query served; plain data, reset
  // with ResetStats().
  struct Stats {
    uint64_t queries = 0;
    uint64_t rounds = 0;
    // Shard batches dispatched (a shard refetched in round 2 counts
    // twice here).
    uint64_t shard_fetches = 0;
    // TA sorted-access depth: sum over shards of the FINAL prefix
    // length pulled for each query. This is the early-termination
    // metric: exhaustive mode pulls min(k, shard size) per shard.
    uint64_t elements_pulled = 0;
    // Total elements moved shard -> coordinator, refetch overlap
    // included; equals the sum of the shard engines' results_returned
    // QueryStats counters.
    uint64_t elements_transferred = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_invalidations = 0;
    // Queries whose epoch-seq window moved mid-gather and were retried.
    uint64_t unstable_retries = 0;
    // Retried queries that exhausted retries and ran the single-round
    // exhaustive fallback.
    uint64_t exhaustive_fallbacks = 0;
  };

  static constexpr size_t kMaxUnstableRetries = 3;

  Coordinator(std::vector<Shard> shards, const Options& options)
      : shards_(std::move(shards)),
        options_(options),
        fanout_(shards_.empty() ? 1 : shards_.size()) {
    TOPK_CHECK(!shards_.empty());
    const size_t s = shards_.size();
    requests_.resize(s);
    results_.resize(s);
    reader_slots_.assign(s, 0);
    for (size_t i = 0; i < s; ++i) {
      TOPK_CHECK(shards_[i].engine != nullptr);
      requests_[i].resize(1);
      if (shards_[i].epochs != nullptr) {
        reader_slots_[i] = shards_[i].epochs->RegisterReader();
      }
    }
    asked_.assign(s, 0);
    fetch_.assign(s, 0);
    done_.assign(s, 0);
    healthy_.assign(s, 1);
    healthy_count_ = s;
    pre_seqs_.assign(s, 0);
    last_seqs_.assign(s, 0);
    probe_seqs_.assign(s, 0);
    cache_.resize(options_.cache_entries);
    for (CacheEntry& e : cache_) e.seqs.assign(s, 0);
  }

  size_t num_shards() const { return shards_.size(); }

  // Marks a shard in or out of the fan-out. While any shard is
  // unhealthy, answers cover the surviving shards exactly and are
  // flagged kDegraded; the cache neither serves nor fills.
  void SetShardHealthy(size_t shard, bool healthy) {
    TOPK_CHECK(shard < shards_.size());
    const uint8_t want = healthy ? uint8_t{1} : uint8_t{0};
    if (healthy_[shard] == want) return;
    healthy_[shard] = want;
    if (healthy) {
      ++healthy_count_;
    } else {
      --healthy_count_;
    }
  }
  bool shard_healthy(size_t shard) const {
    TOPK_CHECK(shard < shards_.size());
    return healthy_[shard] != 0;
  }

  const Stats& stats() const { return stats_; }
  // Per-query status tallies + latency histogram + results_returned,
  // renderable by serve::ToJson (the per-status Metrics JSON surface).
  const serve::MetricsSnapshot& metrics() const { return metrics_; }
  void ResetStats() {
    stats_ = Stats{};
    metrics_.Reset();
  }

  // The per-shard epoch sequence numbers the most recent answer was
  // computed against (0 for static shards / before any query). Under a
  // live writer this pairs each answer with its per-shard snapshots.
  const std::vector<uint64_t>& last_epoch_seqs() const {
    return last_seqs_;
  }

  // Federated top-k: heaviest-first, exact over the healthy shards.
  // *out is the caller's recycled buffer (cleared first); with warm
  // buffers the whole path — cache hit or full fan-out — allocates
  // nothing. Externally synchronized: one call at a time.
  serve::ResultStatus QueryInto(const Predicate& q, size_t k,
                                std::vector<Element>* out) {
    const auto start = Clock::now();
    ++stats_.queries;
    out->clear();
    serve::ResultStatus status;
    if (TryCacheServe(q, k, out)) {
      status = serve::ResultStatus::kOk;
    } else {
      status = GatherInto(q, k, out);
      MaybeCacheFill(q, k, *out, status);
    }
    const auto stop = Clock::now();
    ++metrics_.queries;
    metrics_.CountStatus(status);
    metrics_.latency.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count()));
    metrics_.stats.results_returned += out->size();
    return status;
  }

  // Convenience value form (allocates; tests and cold paths).
  serve::QueryResult<Element> Query(const Predicate& q, size_t k) {
    serve::QueryResult<Element> r;
    r.status = QueryInto(q, k, &r.elements);
    return r;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct CacheEntry {
    bool valid = false;
    size_t k = 0;
    unsigned char key[sizeof(Predicate)] = {};
    std::vector<Element> elements;
    std::vector<uint64_t> seqs;  // per-shard, sized at construction
  };

  // Current per-shard epoch seqs, read through this coordinator's own
  // reader slots (current_seq() is writer-side only: between its load
  // and the seq dereference the epoch could retire and free under a
  // racing publish; a pin cannot). Static shards report 0.
  void ReadSeqs(std::vector<uint64_t>* seqs) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].epochs == nullptr) {
        (*seqs)[s] = 0;
        continue;
      }
      const auto pin = shards_[s].epochs->Acquire(reader_slots_[s]);
      (*seqs)[s] = pin.seq();
    }
  }

  size_t InitialKFor(size_t k) const {
    if (options_.initial_k > 0) {
      return options_.initial_k < k ? options_.initial_k : k;
    }
    const size_t per = k / shards_.size();
    const size_t k0 =
        per + static_cast<size_t>(3.0 * std::sqrt(static_cast<double>(per)))
        + 4;
    return k0 < k ? k0 : k;
  }

  static uint64_t HashKey(const unsigned char* bytes, size_t len,
                          size_t k) {
    // FNV-1a over the predicate bytes, then k folded in.
    uint64_t h = 1469598103934665603ULL;
    for (size_t i = 0; i < len; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
    h ^= static_cast<uint64_t>(k);
    h *= 1099511628211ULL;
    return h;
  }

  bool TryCacheServe(const Predicate& q, size_t k,
                     std::vector<Element>* out) {
    if (cache_.empty()) return false;
    if (healthy_count_ < shards_.size()) {
      ++stats_.cache_misses;
      return false;
    }
    unsigned char key[sizeof(Predicate)];
    std::memcpy(key, &q, sizeof(Predicate));
    const uint64_t h = HashKey(key, sizeof(Predicate), k);
    CacheEntry& e = cache_[static_cast<size_t>(h % cache_.size())];
    if (!e.valid || e.k != k ||
        std::memcmp(e.key, key, sizeof(Predicate)) != 0) {
      ++stats_.cache_misses;
      return false;
    }
    // Epoch validation: serve only if every shard still publishes the
    // seq the entry was computed under. A publish that lands after
    // this probe makes the answer stale by at most one in-flight
    // publish — the same window any single batch has.
    ReadSeqs(&probe_seqs_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (e.seqs[s] != probe_seqs_[s]) {
        e.valid = false;
        ++stats_.cache_invalidations;
        ++stats_.cache_misses;
        return false;
      }
    }
    out->assign(e.elements.begin(), e.elements.end());
    for (size_t s = 0; s < shards_.size(); ++s) {
      last_seqs_[s] = e.seqs[s];
    }
    ++stats_.cache_hits;
    return true;
  }

  void MaybeCacheFill(const Predicate& q, size_t k,
                      const std::vector<Element>& elements,
                      serve::ResultStatus status) {
    if (cache_.empty() || status != serve::ResultStatus::kOk ||
        healthy_count_ < shards_.size()) {
      return;
    }
    unsigned char key[sizeof(Predicate)];
    std::memcpy(key, &q, sizeof(Predicate));
    const uint64_t h = HashKey(key, sizeof(Predicate), k);
    CacheEntry& e = cache_[static_cast<size_t>(h % cache_.size())];
    e.valid = true;
    e.k = k;
    std::memcpy(e.key, key, sizeof(Predicate));
    e.elements.assign(elements.begin(), elements.end());
    // last_seqs_ holds the exact per-shard snapshot versions this
    // answer was computed against (stable window, or per-batch pins on
    // the exhaustive fallback) — exactly the validity condition.
    e.seqs.assign(last_seqs_.begin(), last_seqs_.end());
  }

  // One query, retried until its epoch-seq window is stable. Every
  // retry re-gathers from scratch; the capped fallback runs exhaustive
  // (single round), whose per-shard batches each pin one epoch, so the
  // merge is exact per-shard-snapshot without cross-round stability.
  serve::ResultStatus GatherInto(const Predicate& q, size_t k,
                                 std::vector<Element>* out) {
    if (healthy_count_ == 0) {
      return serve::ResultStatus::kDegraded;
    }
    if (k == 0) {
      // Nothing to fetch; trivially complete.
      ReadSeqs(&last_seqs_);
      return healthy_count_ < shards_.size()
                 ? serve::ResultStatus::kDegraded
                 : serve::ResultStatus::kOk;
    }
    for (size_t attempt = 0;; ++attempt) {
      const bool exhaustive =
          options_.exhaustive || attempt >= kMaxUnstableRetries;
      ReadSeqs(&pre_seqs_);
      out->clear();
      const serve::ResultStatus status =
          GatherOnceInto(q, k, exhaustive, out);
      ReadSeqs(&last_seqs_);
      bool stable = true;
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (pre_seqs_[s] != last_seqs_[s]) stable = false;
      }
      if (stable) return status;
      if (exhaustive) {
        // Single-round gather under a racing writer: record the epoch
        // each shard's one batch actually pinned.
        if (attempt >= kMaxUnstableRetries) ++stats_.exhaustive_fallbacks;
        for (size_t s = 0; s < shards_.size(); ++s) {
          if (healthy_[s] != 0 && shards_[s].epochs != nullptr) {
            last_seqs_[s] = shards_[s].engine->last_batch_epoch();
          }
        }
        return status;
      }
      ++stats_.unstable_retries;
    }
  }

  // One scatter-gather pass: bounded rounds of parallel per-shard
  // fetches with k-doubling asks and TA retirement, then one merge +
  // k-select + degraded-bound truncation into *out.
  serve::ResultStatus GatherOnceInto(const Predicate& q, size_t k,
                                     bool exhaustive,
                                     std::vector<Element>* out) {
    const size_t num = shards_.size();
    for (size_t s = 0; s < num; ++s) {
      asked_[s] = 0;
      done_[s] = static_cast<uint8_t>(healthy_[s] == 0);
    }
    const size_t ask0 = exhaustive ? k : InitialKFor(k);
    bool deadline = false;    // any shard fetch hit its deadline
    bool uncertain = false;   // any shard returned a degraded prefix
    bool unbounded = false;   // ... an EMPTY one (no bound at all)
    bool has_bound = false;
    Element bound{};  // heaviest lightest-returned among degraded shards
    ScratchVec<Element> pool = scratch_.Borrow<Element>();
    for (;;) {
      bool any = false;
      for (size_t s = 0; s < num; ++s) {
        fetch_[s] = 0;
        if (done_[s] != 0) continue;
        size_t ask = asked_[s] == 0 ? ask0 : asked_[s] * 2;
        if (ask > k) ask = k;
        asked_[s] = ask;
        Request& r = requests_[s][0];
        r.predicate = q;
        r.k = ask;
        r.cost_budget = options_.cost_budget;
        r.deadline_ns = options_.deadline_ns;
        fetch_[s] = 1;
        any = true;
      }
      if (!any) break;
      ++stats_.rounds;
      ++metrics_.stats.rounds;
      // Scatter: worker w drives shard w's engine (and nothing else),
      // so each engine sees one externally-synchronized caller.
      fanout_.RunOnAll([this](size_t w) {
        if (fetch_[w] != 0) {
          shards_[w].engine->QueryBatchInto(requests_[w], &results_[w]);
        }
      });
      // Account this round and retire exhausted / fully-asked shards.
      for (size_t s = 0; s < num; ++s) {
        if (fetch_[s] == 0) continue;
        ++stats_.shard_fetches;
        const Result& res = results_[s][0];
        stats_.elements_transferred += res.elements.size();
        if (res.status != serve::ResultStatus::kOk) {
          // A degraded shard still returned a correct heaviest-first
          // prefix; everything it did NOT return is strictly lighter
          // than prefix.back(). Deeper refetching is pointless — the
          // same budget would re-degrade — so retire it and remember
          // the bound for the final truncation.
          done_[s] = 1;
          if (res.status == serve::ResultStatus::kDeadlineExceeded) {
            deadline = true;
          }
          uncertain = true;
          if (res.elements.empty()) {
            unbounded = true;
          } else if (!has_bound ||
                     HeavierThan(res.elements.back(), bound)) {
            bound = res.elements.back();
            has_bound = true;
          }
          continue;
        }
        if (res.elements.size() < asked_[s]) {
          done_[s] = 1;  // shard exhausted: that is its whole answer
        } else if (asked_[s] >= k) {
          done_[s] = 1;  // full top-k pulled; nothing more can matter
        }
      }
      // Merge: rebuild the candidate pool from every healthy shard's
      // LATEST prefix (a refetch supersedes the earlier, shorter one).
      pool.clear();
      for (size_t s = 0; s < num; ++s) {
        if (healthy_[s] == 0 || asked_[s] == 0) continue;
        for (const Element& e : results_[s][0].elements) {
          pool.push_back(e);
        }
      }
      SelectTopK(&pool.vec(), k);
      // TA retirement: once the pool holds k candidates, a live shard
      // whose lightest pulled element does not beat the global k-th
      // has nothing left that could enter the answer.
      if (pool.size() >= k) {
        const Element& kth = pool[k - 1];
        for (size_t s = 0; s < num; ++s) {
          if (done_[s] != 0 || asked_[s] == 0) continue;
          const Result& res = results_[s][0];
          if (!res.elements.empty() &&
              !HeavierThan(res.elements.back(), kth)) {
            done_[s] = 1;
          }
        }
      }
    }
    for (size_t s = 0; s < num; ++s) {
      if (healthy_[s] != 0 && asked_[s] > 0) {
        stats_.elements_pulled += results_[s][0].elements.size();
      }
    }
    out->assign(pool.begin(), pool.end());
    if (uncertain) {
      // Keep only elements that provably beat everything any degraded
      // shard still holds: e survives iff e >= bound under the strict
      // total order (missing elements are strictly lighter than their
      // shard's bound, hence lighter than every survivor). An empty
      // degraded prefix bounds nothing — the answer collapses to the
      // empty (trivially correct) prefix.
      if (unbounded) {
        out->clear();
      } else {
        size_t keep = 0;
        while (keep < out->size() && !HeavierThan(bound, (*out)[keep])) {
          ++keep;
        }
        out->resize(keep);
      }
    }
    if (deadline) return serve::ResultStatus::kDeadlineExceeded;
    if (uncertain || healthy_count_ < num) {
      return serve::ResultStatus::kDegraded;
    }
    return serve::ResultStatus::kOk;
  }

  std::vector<Shard> shards_;
  Options options_;
  // One parked worker per shard; RunOnAll is the scatter barrier.
  serve::ThreadPool fanout_;
  Scratch scratch_;
  // Per-shard 1-request batches and recycled result slots; worker w
  // touches only requests_[w]/results_[w] during a fan-out.
  // Thread-safety: guarded by the fan-out barrier (QueryInto is not
  // itself concurrent; see class comment).
  std::vector<std::vector<Request>> requests_;
  std::vector<std::vector<Result>> results_;
  std::vector<size_t> asked_;
  std::vector<uint8_t> fetch_;
  std::vector<uint8_t> done_;
  std::vector<uint8_t> healthy_;
  size_t healthy_count_ = 0;
  std::vector<size_t> reader_slots_;
  std::vector<uint64_t> pre_seqs_;
  std::vector<uint64_t> last_seqs_;
  std::vector<uint64_t> probe_seqs_;
  std::vector<CacheEntry> cache_;
  Stats stats_;
  serve::MetricsSnapshot metrics_;
};

}  // namespace topk::federate

#endif  // TOPK_FEDERATE_COORDINATOR_H_
