// Hash shard map: which of S partitions an element lives in.
//
// Federation partitions the dataset D by hash on the 64-bit `id` field
// (ids are unique by the library-wide (weight, id) total-order
// contract), so every element has exactly one home shard and the union
// of the shards is D as a multiset. The id bits go through a SplitMix64
// finalizer before the modulo: ids in this repo are typically dense
// (1..n), and the finalizer spreads them uniformly regardless of shard
// count — no shard-count-is-a-power-of-two assumption, no hot shard
// from sequential allocation.
//
// The map is pure arithmetic on the id, so the coordinator, the shard
// builders, and any future router agree on placement without shared
// state, and placement is stable across process restarts.

#ifndef TOPK_FEDERATE_SHARD_MAP_H_
#define TOPK_FEDERATE_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace topk::federate {

// SplitMix64 finalizer (same mixer common/random.h uses for seeding):
// bijective on 64-bit ids, so distinct ids never collide before the
// modulo and the low bits are fully mixed.
inline uint64_t MixId(uint64_t id) {
  uint64_t z = id + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline size_t ShardOf(uint64_t id, size_t num_shards) {
  TOPK_CHECK(num_shards >= 1);
  return static_cast<size_t>(MixId(id) % num_shards);
}

// Splits `data` into num_shards disjoint parts by ShardOf. Every input
// element lands in exactly one part; relative order within a part
// follows the input (deterministic builds).
template <typename Element>
std::vector<std::vector<Element>> PartitionById(
    const std::vector<Element>& data, size_t num_shards) {
  TOPK_CHECK(num_shards >= 1);
  std::vector<std::vector<Element>> shards(num_shards);
  for (const Element& e : data) {
    shards[ShardOf(e.id, num_shards)].push_back(e);
  }
  return shards;
}

}  // namespace topk::federate

#endif  // TOPK_FEDERATE_SHARD_MAP_H_
